#include "noc/interposer_network.hh"

#include <algorithm>

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

InterposerNetwork::InterposerNetwork(Simulation &sim,
                                     const std::string &name,
                                     const Topology &topo,
                                     InterposerParams params)
    : Network(sim, name, topo.nodes().size()),
      topo_(topo), params_(params),
      statLinkStallTicks_(sim.stats(), name + ".linkStallTicks",
                          "ticks packets waited on busy links")
{
    ENA_ASSERT(params_.linkBytesPerCycle > 0, "zero link width");
}

Tick
InterposerNetwork::serialization(std::uint32_t bytes) const
{
    // Flit-level occupancy: a 64 B packet on a 256 B/cycle link holds
    // it for a quarter cycle, not a full one.
    double cycles = static_cast<double>(bytes) /
                    params_.linkBytesPerCycle;
    auto ticks = static_cast<Tick>(cycles * params_.cycle());
    return std::max<Tick>(ticks, 1);
}

void
InterposerNetwork::send(const Packet &pkt)
{
    if (sim().crossesDomain(domain())) {
        // The TSV descent from the sender's chiplet is the
        // cross-domain channel into the interposer domain; its latency
        // is what the conservative lookahead is sized against.
        Tick inject = sim().now();
        Packet copy = pkt;
        sim().postCrossDomain(
            domain(), inject + params_.tsvCycles * params_.cycle(),
            [this, copy, inject] { route(copy, inject); }, "noc inject");
        return;
    }
    route(pkt, curTick());
}

void
InterposerNetwork::route(const Packet &pkt, Tick inject)
{
    const TopologyNode &src = topo_.node(pkt.src);
    const TopologyNode &dst = topo_.node(pkt.dst);
    Tick cycle = params_.cycle();
    Tick ser = serialization(pkt.bytes);

    // Descend into the interposer.
    Tick t = inject + params_.tsvCycles * cycle;

    std::uint32_t hops = 0;
    std::uint32_t at = src.router;
    while (at != dst.router) {
        std::uint32_t nh = topo_.nextHop(at, dst.router);
        // Router pipeline, then contend for the directed link.
        t += params_.routerCycles * cycle;
        Tick &busy = linkBusy_[{at, nh}];
        Tick depart = std::max(t, busy);
        statLinkStallTicks_ += static_cast<double>(depart - t);
        busy = depart + ser;
        t = depart + ser + params_.linkCycles * cycle;
        at = nh;
        ++hops;
    }

    // Final router traversal and ascent to the destination chiplet.
    t += params_.routerCycles * cycle;
    t += params_.tsvCycles * cycle;

    recordPacket(pkt, hops);
    scheduleDelivery(pkt, t, inject);
}

Tick
InterposerNetwork::zeroLoadLatency(NodeId src_id, NodeId dst_id,
                                   std::uint32_t bytes) const
{
    const TopologyNode &src = topo_.node(src_id);
    const TopologyNode &dst = topo_.node(dst_id);
    Tick cycle = params_.cycle();
    std::uint32_t hops = topo_.hopCount(src.router, dst.router);
    Tick t = 2 * params_.tsvCycles * cycle;
    t += (hops + 1) * params_.routerCycles * cycle;
    t += hops * (serialization(bytes) + params_.linkCycles * cycle);
    return t;
}

} // namespace ena

/**
 * @file
 * Physical topology of the EHP's interposer interconnect (Fig. 2/3).
 *
 * Endpoint nodes are the chiplets and memory stacks; routers sit in the
 * active interposers beneath the chiplets. The default EHP floor order
 * along the package is G0 G1 G2 G3 C0 C1 G4 G5 G6 G7, with one router
 * under each chiplet position, routers connected left-to-right, and one
 * HBM stack reached through TSVs directly above each GPU chiplet.
 */

#ifndef ENA_NOC_TOPOLOGY_HH
#define ENA_NOC_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "noc/packet.hh"

namespace ena {

/** What an endpoint node is. */
enum class NodeKind : std::uint8_t
{
    GpuChiplet,
    CpuCluster,
    MemStack,
};

/** One endpoint attached to a router through TSVs. */
struct TopologyNode
{
    NodeId id = invalidNode;
    NodeKind kind = NodeKind::GpuChiplet;
    std::uint32_t router = 0;   ///< interposer router it attaches to
    std::string name;
};

/** One bidirectional router-to-router link. */
struct TopologyLink
{
    std::uint32_t routerA = 0;
    std::uint32_t routerB = 0;
};

class Topology
{
  public:
    /**
     * Build the default EHP topology: @p gpu_chiplets GPU chiplets with
     * one memory stack each, plus @p cpu_clusters CPU clusters in the
     * middle of the floor plan.
     */
    static Topology ehp(int gpu_chiplets = 8, int cpu_clusters = 2);

    /**
     * Build a pure router graph shaped as an nx x ny x nz torus with
     * wraparound links in every dimension of size >= 3 (size-2 rings
     * collapse to a single link; size-1 dimensions add none). Router id
     * of coordinate (x, y, z) is x + nx*(y + ny*z). No endpoint nodes
     * are attached: this exists so analytic inter-node network models
     * (src/cluster/) can validate their closed-form hop counts against
     * BFS-exact ones on small instances.
     */
    static Topology torus3d(int nx, int ny, int nz);

    const std::vector<TopologyNode> &nodes() const { return nodes_; }
    const std::vector<TopologyLink> &links() const { return links_; }
    std::uint32_t numRouters() const { return numRouters_; }

    /** Mesh geometry: routers form a 2 x columns() grid, row-major. */
    std::uint32_t columns() const { return cols_; }
    std::uint32_t rows() const { return numRouters_ / cols_; }

    const TopologyNode &node(NodeId id) const;

    /** First node of a given kind and ordinal (e.g. 3rd GPU chiplet). */
    NodeId nodeOf(NodeKind kind, int ordinal) const;

    /** All node ids of one kind, in creation order. */
    std::vector<NodeId> nodesOf(NodeKind kind) const;

    /**
     * Next router on the (precomputed) shortest path from @p at toward
     * @p to; fatal() if unreachable.
     */
    std::uint32_t nextHop(std::uint32_t at, std::uint32_t to) const;

    /** Router hop count between two routers. */
    std::uint32_t hopCount(std::uint32_t from, std::uint32_t to) const;

  private:
    Topology() = default;

    NodeId addNode(NodeKind kind, std::uint32_t router, std::string name);
    void addLink(std::uint32_t a, std::uint32_t b);
    void computeRoutes();

    std::vector<TopologyNode> nodes_;
    std::vector<TopologyLink> links_;
    std::uint32_t numRouters_ = 0;
    std::uint32_t cols_ = 0;
    /** nextHop_[from][to] = next router id; hops_[from][to] = distance. */
    std::vector<std::vector<std::uint32_t>> nextHop_;
    std::vector<std::vector<std::uint32_t>> hops_;
};

} // namespace ena

#endif // ENA_NOC_TOPOLOGY_HH

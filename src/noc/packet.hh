/**
 * @file
 * Network packet for the chiplet/interposer interconnect.
 *
 * Packets are request/response pairs between endpoint nodes (GPU
 * chiplets, CPU clusters, memory stacks). Payload routing back to the
 * requester is handled by the memory-system callbacks, not the network,
 * so the packet itself stays a plain value type.
 */

#ifndef ENA_NOC_PACKET_HH
#define ENA_NOC_PACKET_HH

#include <cstdint>

#include "util/units.hh"

namespace ena {

/** Endpoint node index within a Topology. */
using NodeId = std::uint32_t;

constexpr NodeId invalidNode = ~NodeId(0);

struct Packet
{
    std::uint64_t id = 0;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    std::uint32_t bytes = 0;
    bool isResponse = false;
    Tick injectTick = 0;
    /** Memory address carried for the memory-side endpoints. */
    std::uint64_t addr = 0;
    bool isWrite = false;
    /** Posted writes (writebacks) carry no response. */
    bool needsResponse = true;
};

} // namespace ena

#endif // ENA_NOC_PACKET_HH

#include "noc/topology.hh"

#include <deque>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

NodeId
Topology::addNode(NodeKind kind, std::uint32_t router, std::string name)
{
    TopologyNode n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.kind = kind;
    n.router = router;
    n.name = std::move(name);
    nodes_.push_back(n);
    return n.id;
}

void
Topology::addLink(std::uint32_t a, std::uint32_t b)
{
    ENA_ASSERT(a != b, "self link on router ", a);
    links_.push_back({a, b});
}

Topology
Topology::ehp(int gpu_chiplets, int cpu_clusters)
{
    if (gpu_chiplets < 1 || gpu_chiplets % 2 != 0)
        ENA_FATAL("EHP topology needs an even GPU chiplet count, got ",
                  gpu_chiplets);
    if (cpu_clusters < 0)
        ENA_FATAL("negative CPU cluster count");

    Topology t;
    // Two-row package floor plan (Fig. 2): the GPU clusters flank the
    // central CPU clusters, two chiplet positions deep. Positions are a
    // 2 x C grid of interposer routers; row-major router ids.
    int positions = gpu_chiplets + cpu_clusters;
    if (positions % 2 != 0)
        ENA_FATAL("EHP topology needs an even position count");
    int cols = positions / 2;
    t.numRouters_ = static_cast<std::uint32_t>(positions);
    t.cols_ = static_cast<std::uint32_t>(cols);

    // Assign positions column-by-column: GPU columns on the left, CPU
    // column(s) in the middle, GPU columns on the right.
    int gpu_cols_left = (gpu_chiplets / 2 + 1) / 2;
    int gpu_idx = 0;
    int cpu_idx = 0;
    for (int c = 0; c < cols; ++c) {
        bool cpu_col = c >= gpu_cols_left &&
                       cpu_idx + 1 < cpu_clusters + 1 &&
                       cpu_idx < cpu_clusters;
        for (int r = 0; r < 2; ++r) {
            std::uint32_t router =
                static_cast<std::uint32_t>(r * cols + c);
            if (cpu_col && cpu_idx < cpu_clusters) {
                t.addNode(NodeKind::CpuCluster, router,
                          strformat("cpu%d", cpu_idx++));
            } else if (gpu_idx < gpu_chiplets) {
                t.addNode(NodeKind::GpuChiplet, router,
                          strformat("gpu%d", gpu_idx++));
            } else {
                t.addNode(NodeKind::CpuCluster, router,
                          strformat("cpu%d", cpu_idx++));
            }
        }
    }

    // One memory stack directly above each GPU chiplet.
    for (int i = 0; i < gpu_chiplets; ++i) {
        const TopologyNode &gpu = t.node(t.nodeOf(NodeKind::GpuChiplet, i));
        t.addNode(NodeKind::MemStack, gpu.router, strformat("hbm%d", i));
    }

    // 2 x C mesh of wide, short point-to-point interposer links.
    for (int c = 0; c < cols; ++c) {
        t.addLink(c, cols + c);                 // vertical
        if (c + 1 < cols) {
            t.addLink(c, c + 1);                // row 0 horizontal
            t.addLink(cols + c, cols + c + 1);  // row 1 horizontal
        }
    }

    t.computeRoutes();
    return t;
}

Topology
Topology::torus3d(int nx, int ny, int nz)
{
    if (nx < 1 || ny < 1 || nz < 1)
        ENA_FATAL("torus3d needs positive dimensions, got ", nx, "x", ny,
                  "x", nz);
    Topology t;
    t.numRouters_ = static_cast<std::uint32_t>(nx) * ny * nz;
    t.cols_ = static_cast<std::uint32_t>(nx);
    if (t.numRouters_ > 4096)
        ENA_FATAL("torus3d is a validation helper; ", t.numRouters_,
                  " routers is too large for all-pairs routing");

    auto id = [&](int x, int y, int z) {
        return static_cast<std::uint32_t>(x + nx * (y + ny * z));
    };
    // One ring per dimension through every perpendicular coordinate
    // pair. A dimension of size 2 is a single bidirectional link (the
    // wrap link would duplicate it); size 1 contributes nothing.
    for (int z = 0; z < nz; ++z) {
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                if (nx > 1 && (x + 1 < nx || nx > 2))
                    t.addLink(id(x, y, z), id((x + 1) % nx, y, z));
                if (ny > 1 && (y + 1 < ny || ny > 2))
                    t.addLink(id(x, y, z), id(x, (y + 1) % ny, z));
                if (nz > 1 && (z + 1 < nz || nz > 2))
                    t.addLink(id(x, y, z), id(x, y, (z + 1) % nz));
            }
        }
    }
    t.computeRoutes();
    return t;
}

const TopologyNode &
Topology::node(NodeId id) const
{
    ENA_ASSERT(id < nodes_.size(), "bad node id ", id);
    return nodes_[id];
}

NodeId
Topology::nodeOf(NodeKind kind, int ordinal) const
{
    int seen = 0;
    for (const TopologyNode &n : nodes_) {
        if (n.kind == kind) {
            if (seen == ordinal)
                return n.id;
            ++seen;
        }
    }
    ENA_FATAL("no node of kind ", static_cast<int>(kind), " ordinal ",
              ordinal);
}

std::vector<NodeId>
Topology::nodesOf(NodeKind kind) const
{
    std::vector<NodeId> out;
    for (const TopologyNode &n : nodes_) {
        if (n.kind == kind)
            out.push_back(n.id);
    }
    return out;
}

void
Topology::computeRoutes()
{
    const std::uint32_t unreachable = ~std::uint32_t(0);
    nextHop_.assign(numRouters_,
                    std::vector<std::uint32_t>(numRouters_, unreachable));
    hops_.assign(numRouters_,
                 std::vector<std::uint32_t>(numRouters_, unreachable));

    // Adjacency list.
    std::vector<std::vector<std::uint32_t>> adj(numRouters_);
    for (const TopologyLink &l : links_) {
        ENA_ASSERT(l.routerA < numRouters_ && l.routerB < numRouters_,
                   "link references unknown router");
        adj[l.routerA].push_back(l.routerB);
        adj[l.routerB].push_back(l.routerA);
    }

    // BFS from every router; record the first hop toward each source.
    for (std::uint32_t src = 0; src < numRouters_; ++src) {
        hops_[src][src] = 0;
        nextHop_[src][src] = src;
        std::deque<std::uint32_t> queue{src};
        while (!queue.empty()) {
            std::uint32_t at = queue.front();
            queue.pop_front();
            for (std::uint32_t nb : adj[at]) {
                if (hops_[src][nb] != unreachable)
                    continue;
                hops_[src][nb] = hops_[src][at] + 1;
                // First hop from nb toward src is 'at'.
                nextHop_[nb][src] = at;
                queue.push_back(nb);
            }
        }
    }
}

std::uint32_t
Topology::nextHop(std::uint32_t at, std::uint32_t to) const
{
    ENA_ASSERT(at < numRouters_ && to < numRouters_, "bad router id");
    std::uint32_t nh = nextHop_[at][to];
    if (nh == ~std::uint32_t(0))
        ENA_FATAL("router ", to, " unreachable from ", at);
    return nh;
}

std::uint32_t
Topology::hopCount(std::uint32_t from, std::uint32_t to) const
{
    ENA_ASSERT(from < numRouters_ && to < numRouters_, "bad router id");
    std::uint32_t h = hops_[from][to];
    if (h == ~std::uint32_t(0))
        ENA_FATAL("router ", to, " unreachable from ", from);
    return h;
}

} // namespace ena

#include "noc/crossbar_network.hh"

#include <algorithm>
#include <cmath>

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

CrossbarNetwork::CrossbarNetwork(Simulation &sim, const std::string &name,
                                 size_t num_nodes, CrossbarParams params)
    : Network(sim, name, num_nodes), params_(params),
      statStallTicks_(sim.stats(), name + ".stallTicks",
                      "ticks packets waited on fabric capacity")
{
    ENA_ASSERT(params_.aggregateBytesPerCycle > 0.0,
               "zero crossbar capacity");
}

void
CrossbarNetwork::send(const Packet &pkt)
{
    // The monolithic model has no interposer channel to hide a window
    // behind, so it is never domain-sharded.
    ENA_ASSERT(!sim().crossesDomain(domain()),
               "CrossbarNetwork is single-domain; packet from node ",
               pkt.src, " sent from a foreign domain");
    Tick cycle = clockPeriod(params_.clockGhz);

    // Occupancy charged against the shared aggregate capacity.
    double cycles_needed =
        static_cast<double>(pkt.bytes) / params_.aggregateBytesPerCycle;
    Tick occupancy =
        std::max<Tick>(1, static_cast<Tick>(
                              std::ceil(cycles_needed * cycle)));

    Tick depart = std::max(curTick(), busyUntil_);
    statStallTicks_ += static_cast<double>(depart - curTick());
    busyUntil_ = depart + occupancy;

    Tick arrival = depart + occupancy + params_.latencyCycles * cycle;
    recordPacket(pkt, 1);
    scheduleDelivery(pkt, arrival);
}

Tick
CrossbarNetwork::zeroLoadLatency(std::uint32_t bytes) const
{
    Tick cycle = clockPeriod(params_.clockGhz);
    double cycles_needed =
        static_cast<double>(bytes) / params_.aggregateBytesPerCycle;
    Tick occupancy =
        std::max<Tick>(1, static_cast<Tick>(
                              std::ceil(cycles_needed * cycle)));
    return occupancy + params_.latencyCycles * cycle;
}

} // namespace ena

/**
 * @file
 * The hypothetical monolithic-EHP interconnect of Fig. 7: a flat on-die
 * crossbar with uniform latency and a shared aggregate bandwidth equal
 * to the chiplet fabric's bisection capacity. No TSV hops.
 */

#ifndef ENA_NOC_CROSSBAR_NETWORK_HH
#define ENA_NOC_CROSSBAR_NETWORK_HH

#include "noc/network.hh"

namespace ena {

struct CrossbarParams
{
    double clockGhz = 1.0;
    std::uint32_t latencyCycles = 6;      ///< uniform traversal latency
    double aggregateBytesPerCycle = 512;  ///< shared fabric capacity
};

class CrossbarNetwork : public Network
{
  public:
    CrossbarNetwork(Simulation &sim, const std::string &name,
                    size_t num_nodes, CrossbarParams params);

    void send(const Packet &pkt) override;

    Tick zeroLoadLatency(std::uint32_t bytes) const;

  private:
    CrossbarParams params_;
    /** Aggregate-capacity horizon: the fabric can move
     *  aggregateBytesPerCycle each cycle; excess serializes. */
    Tick busyUntil_ = 0;

    StatScalar statStallTicks_;
};

} // namespace ena

#endif // ENA_NOC_CROSSBAR_NETWORK_HH

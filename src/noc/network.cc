#include "noc/network.hh"

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

Network::Network(Simulation &sim, const std::string &name,
                 size_t num_nodes)
    : SimObject(sim, name),
      endpoints_(num_nodes, nullptr),
      endpointDomains_(num_nodes, 0),
      statPackets_(sim.stats(), name + ".packets", "packets injected"),
      statBytes_(sim.stats(), name + ".bytes", "payload bytes injected"),
      statHops_(sim.stats(), name + ".hops", "total router hops"),
      statByteHops_(sim.stats(), name + ".byteHops",
                    "byte-hops traversed (energy proxy)"),
      statLatency_(sim.stats(), name + ".latency",
                   "packet latency (ns)", 0.0, 1000.0, 50)
{
}

void
Network::attach(NodeId id, NetworkEndpoint *ep, int dom)
{
    ENA_ASSERT(id < endpoints_.size(), "attach: bad node id ", id);
    ENA_ASSERT(!endpoints_[id], "node ", id, " already attached");
    ENA_ASSERT(dom >= -1 && dom < sim().numDomains(),
               "attach: bad domain ", dom, " for node ", id);
    endpoints_[id] = ep;
    endpointDomains_[id] = dom < 0 ? domain() : dom;
}

void
Network::scheduleDelivery(const Packet &pkt, Tick arrival)
{
    scheduleDelivery(pkt, arrival, curTick());
}

void
Network::scheduleDelivery(const Packet &pkt, Tick arrival, Tick injected)
{
    ENA_ASSERT(pkt.dst < endpoints_.size(), "send: bad dst node ",
               pkt.dst);
    NetworkEndpoint *ep = endpoints_[pkt.dst];
    ENA_ASSERT(ep, "send: node ", pkt.dst, " has no endpoint");
    statLatency_.sample(
        static_cast<double>(arrival - injected) / tickPerNs);
    // postCrossDomain degenerates to a plain scheduleLambda when the
    // endpoint shares the executing domain (always true serially), so
    // the single-domain kernel behaves exactly as before.
    sim().postCrossDomain(
        endpointDomains_[pkt.dst], arrival,
        [ep, pkt] { ep->receivePacket(pkt); }, "packet delivery");
}

void
Network::recordPacket(const Packet &pkt, std::uint32_t hops)
{
    ++statPackets_;
    statBytes_ += pkt.bytes;
    statHops_ += hops;
    statByteHops_ += static_cast<double>(pkt.bytes) * hops;
}

} // namespace ena

/**
 * @file
 * External-memory network timing model (Section II-B2).
 *
 * The EHP exposes several external-memory interfaces; each interface
 * drives a chain of memory modules (DRAM or NVM) connected by
 * point-to-point SerDes links (Hybrid-Memory-Cube style). Latency grows
 * with chain depth; interface bandwidth is shared by the modules behind
 * it. Addresses interleave across interfaces, then across the modules
 * of a chain by capacity.
 */

#ifndef ENA_MEM_EXT_MEMORY_HH
#define ENA_MEM_EXT_MEMORY_HH

#include <functional>
#include <vector>

#include "common/node_config.hh"
#include "sim/sim_object.hh"

namespace ena {

/** Device technology of one module. */
enum class ExtMemTech
{
    Dram,
    Nvm,
};

struct ExtMemTiming
{
    double serdesHopNs = 8.0;       ///< per link traversal (one way)
    double dramAccessNs = 60.0;
    double nvmReadNs = 150.0;
    double nvmWriteNs = 500.0;
    double interfaceGbs = 80.0;     ///< per-interface bandwidth
};

class ExternalMemoryNetwork : public SimObject
{
  public:
    using Callback = std::function<void()>;

    /**
     * Build chains from an ExtMemConfig: DRAM modules first (closest to
     * the package), NVM modules appended at the chain tails, spread
     * round-robin across interfaces.
     */
    ExternalMemoryNetwork(Simulation &sim, const std::string &name,
                          const ExtMemConfig &cfg,
                          ExtMemTiming timing = {});

    /** Issue one access; @p done runs at completion. */
    void access(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                Callback done);

    /** Chain position (0-based) of the module an address maps to. */
    int chainDepthOf(std::uint64_t addr) const;

    /** Technology of the module an address maps to. */
    ExtMemTech techOf(std::uint64_t addr) const;

    int numInterfaces() const { return static_cast<int>(chains_.size()); }
    int totalModules() const;

    double bytesServed() const { return statBytes_.value(); }
    double nvmAccesses() const { return statNvmAccesses_.value(); }

  private:
    struct Module
    {
        ExtMemTech tech;
        double capacityGb;
    };

    struct Chain
    {
        std::vector<Module> modules;
        Tick busyUntil = 0;        ///< interface-link horizon
        double capacityGb = 0.0;
    };

    /** Locate (chain, module) for an address. */
    void locate(std::uint64_t addr, int &chain, int &module) const;

    ExtMemTiming timing_;
    std::vector<Chain> chains_;
    std::uint64_t interleaveBytes_ = 1ull << 20;   ///< 1 MiB stripes

    StatScalar statReads_;
    StatScalar statWrites_;
    StatScalar statBytes_;
    StatScalar statNvmAccesses_;
    StatDistribution statLatency_;
};

} // namespace ena

#endif // ENA_MEM_EXT_MEMORY_HH

#include "mem/cache.hh"

#include "util/logging.hh"

namespace ena {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

Cache::Cache(const CacheParams &params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
    if (!isPow2(params_.lineBytes))
        ENA_FATAL("cache line size must be a power of two, got ",
                  params_.lineBytes);
    if (params_.ways == 0)
        ENA_FATAL("cache needs at least one way");
    std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    if (lines == 0 || lines % params_.ways != 0)
        ENA_FATAL("cache size ", params_.sizeBytes,
                  " not divisible into ", params_.ways, " ways of ",
                  params_.lineBytes, "B lines");
    numSets_ = static_cast<std::uint32_t>(lines / params_.ways);
    if (!isPow2(numSets_))
        ENA_FATAL("cache set count must be a power of two, got ",
                  numSets_);
    lines_.resize(lines);
}

std::uint32_t
Cache::setIndex(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>((addr / params_.lineBytes) &
                                      (numSets_ - 1));
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr / params_.lineBytes / numSets_;
}

std::uint64_t
Cache::lineAddr(std::uint32_t set, std::uint64_t tag) const
{
    return (tag * numSets_ + set) * params_.lineBytes;
}

std::uint32_t
Cache::pickVictim(std::uint32_t set)
{
    std::uint32_t base = set * params_.ways;
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (!lines_[base + w].valid)
            return w;
    }
    switch (params_.policy) {
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng_.below(params_.ways));
      case ReplPolicy::Lru:
      case ReplPolicy::Fifo: {
        std::uint32_t victim = 0;
        std::uint64_t oldest = lines_[base].stamp;
        for (std::uint32_t w = 1; w < params_.ways; ++w) {
            if (lines_[base + w].stamp < oldest) {
                oldest = lines_[base + w].stamp;
                victim = w;
            }
        }
        return victim;
      }
    }
    ENA_PANIC("unknown replacement policy");
}

CacheOutcome
Cache::access(std::uint64_t addr, bool is_write)
{
    ++tick_;
    std::uint32_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    std::uint32_t base = set * params_.ways;

    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            ++hits_;
            if (is_write)
                line.dirty = true;
            if (params_.policy == ReplPolicy::Lru)
                line.stamp = tick_;
            return {true, false, 0};
        }
    }

    ++misses_;
    std::uint32_t victim = pickVictim(set);
    Line &line = lines_[base + victim];
    CacheOutcome out;
    if (line.valid && line.dirty) {
        out.writeback = true;
        out.victimAddr = lineAddr(set, line.tag);
        ++writebacks_;
    }
    line.valid = true;
    line.dirty = is_write;
    line.tag = tag;
    line.stamp = tick_;   // fill time; LRU updates on later hits
    return out;
}

bool
Cache::probe(std::uint64_t addr) const
{
    std::uint32_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    std::uint32_t base = set * params_.ways;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(std::uint64_t addr)
{
    std::uint32_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    std::uint32_t base = set * params_.ways;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            bool dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return dirty;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace ena

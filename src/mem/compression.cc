#include "mem/compression.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace ena {

namespace {

std::uint32_t
word32(const CacheLine &line, size_t i)
{
    std::uint32_t w = 0;
    std::memcpy(&w, line.data() + i * 4, 4);
    return w;
}

std::uint64_t
word64(const CacheLine &line, size_t i)
{
    std::uint64_t w = 0;
    std::memcpy(&w, line.data() + i * 8, 8);
    return w;
}

/** True when @p v fits in @p bits as a signed (sign-extended) value. */
bool
fitsSigned(std::int64_t v, int bits)
{
    std::int64_t lo = -(std::int64_t(1) << (bits - 1));
    std::int64_t hi = (std::int64_t(1) << (bits - 1)) - 1;
    return v >= lo && v <= hi;
}

/**
 * BDI attempt: all @p k-byte values expressed as the first value plus
 * a delta fitting in @p d bytes. Returns encoded bytes or 64 if the
 * line does not fit the encoding.
 */
size_t
bdiAttempt(const CacheLine &line, size_t k, size_t d)
{
    size_t n = 64 / k;
    std::int64_t base = 0;
    std::memcpy(&base, line.data(), k);
    // Sign-extend the base (not strictly needed for the size check).
    for (size_t i = 1; i < n; ++i) {
        std::int64_t v = 0;
        std::memcpy(&v, line.data() + i * k, k);
        // Wrapped (two's-complement) difference: full-width values may
        // straddle the signed range, where `v - base` would overflow.
        auto delta = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(v) -
            static_cast<std::uint64_t>(base));
        if (!fitsSigned(delta, static_cast<int>(d * 8)))
            return 64;
    }
    // base + (n-1) deltas + 1 byte of metadata.
    return k + (n - 1) * d + 1;
}

} // anonymous namespace

size_t
LineCompressor::fpcSize(const CacheLine &line)
{
    size_t bits = 0;
    for (size_t i = 0; i < 16; ++i) {
        std::uint32_t w = word32(line, i);
        auto sv = static_cast<std::int32_t>(w);
        bits += 3;   // prefix
        if (w == 0) {
            // zero word: prefix only
        } else if (fitsSigned(sv, 4)) {
            bits += 4;
        } else if (fitsSigned(sv, 8)) {
            bits += 8;
        } else if (fitsSigned(sv, 16)) {
            bits += 16;
        } else if ((w & 0xFFFFu) == 0) {
            bits += 16;   // halfword padded with zeros
        } else if (fitsSigned(static_cast<std::int16_t>(w & 0xFFFF), 8) &&
                   fitsSigned(static_cast<std::int16_t>(w >> 16), 8)) {
            bits += 16;   // two sign-extended bytes in halfwords
        } else if ((w & 0xFF) == ((w >> 8) & 0xFF) &&
                   (w & 0xFF) == ((w >> 16) & 0xFF) &&
                   (w & 0xFF) == (w >> 24)) {
            bits += 8;    // repeated byte
        } else {
            bits += 32;   // uncompressed word
        }
    }
    size_t bytes = (bits + 7) / 8;
    return std::min<size_t>(bytes, 64);
}

size_t
LineCompressor::bdiSize(const CacheLine &line)
{
    // Special case: all zero.
    bool all_zero = true;
    for (std::uint8_t b : line)
        all_zero = all_zero && b == 0;
    if (all_zero)
        return 1;

    // Special case: repeated 8-byte value.
    bool repeated = true;
    std::uint64_t first = word64(line, 0);
    for (size_t i = 1; i < 8; ++i)
        repeated = repeated && word64(line, i) == first;
    if (repeated)
        return 8 + 1;

    size_t best = 64;
    const std::pair<size_t, size_t> attempts[] = {
        {8, 1}, {8, 2}, {8, 4}, {4, 1}, {4, 2}, {2, 1},
    };
    for (auto [k, d] : attempts)
        best = std::min(best, bdiAttempt(line, k, d));
    return best;
}

size_t
LineCompressor::compressedSize(const CacheLine &line,
                               CompressScheme scheme)
{
    switch (scheme) {
      case CompressScheme::Fpc:
        return fpcSize(line);
      case CompressScheme::Bdi:
        return bdiSize(line);
      case CompressScheme::Best:
        return std::min(fpcSize(line), bdiSize(line));
    }
    ENA_PANIC("unknown compression scheme");
}

CacheLine
SyntheticData::line(DataKind kind)
{
    CacheLine out{};
    switch (kind) {
      case DataKind::ZeroFill:
        break;

      case DataKind::SmoothField: {
        // Eight fp64 samples of a smooth field: same magnitude,
        // slightly varying mantissas -> 8-byte bases with small deltas.
        double base = 1.0 + rng_.uniform() * 0.5;
        for (size_t i = 0; i < 8; ++i) {
            // Integer view: perturb only low mantissa bits so the
            // 8-byte integer deltas stay tiny.
            double v = base;
            std::uint64_t u = 0;
            std::memcpy(&u, &v, 8);
            u += rng_.below(256);
            std::memcpy(out.data() + i * 8, &u, 8);
        }
        break;
      }

      case DataKind::IndexArray: {
        // Neighbor lists: nearby 32-bit indices around a common base.
        std::uint32_t base =
            static_cast<std::uint32_t>(rng_.below(1u << 24));
        for (size_t i = 0; i < 16; ++i) {
            std::uint32_t v =
                base + static_cast<std::uint32_t>(rng_.below(128));
            std::memcpy(out.data() + i * 4, &v, 4);
        }
        break;
      }

      case DataKind::RandomTable:
        for (size_t i = 0; i < 8; ++i) {
            std::uint64_t v = rng_.next();
            std::memcpy(out.data() + i * 8, &v, 8);
        }
        break;

      case DataKind::Mixed: {
        // Half small integers, half random payload.
        for (size_t i = 0; i < 8; ++i) {
            std::uint32_t v =
                static_cast<std::uint32_t>(rng_.below(1000));
            std::memcpy(out.data() + i * 4, &v, 4);
        }
        for (size_t i = 8; i < 16; ++i) {
            auto v = static_cast<std::uint32_t>(rng_.next());
            std::memcpy(out.data() + i * 4, &v, 4);
        }
        break;
      }
    }
    return out;
}

DataKind
TrafficCompressionModel::dominantKind(App app)
{
    switch (app) {
      case App::LULESH:
      case App::MiniAMR:
      case App::HPGMG:
        return DataKind::SmoothField;   // PDE fields / stencils
      case App::CoMD:
      case App::CoMDLJ:
        return DataKind::Mixed;         // positions + neighbor lists
      case App::SNAP:
        return DataKind::SmoothField;   // angular fluxes
      case App::XSBench:
        return DataKind::RandomTable;   // cross-section tables
      case App::MaxFlops:
        return DataKind::Mixed;         // register-resident kernel
    }
    ENA_PANIC("unknown App enum value");
}

double
TrafficCompressionModel::measureRatio(App app, CompressScheme scheme,
                                      int samples,
                                      std::uint64_t seed) const
{
    ENA_ASSERT(samples > 0, "need samples");
    SyntheticData gen(seed);
    Rng mix(seed ^ 0xabcdefull);
    DataKind kind = dominantKind(app);
    // Traffic ratio = raw bytes / compressed bytes over the stream
    // (bytes-weighted, not a mean of per-line ratios — a few all-zero
    // lines must not dominate).
    double compressed = 0.0;
    for (int i = 0; i < samples; ++i) {
        // A fraction of any stream is freshly-zeroed pages/metadata.
        DataKind k = mix.chance(0.08) ? DataKind::ZeroFill : kind;
        compressed += static_cast<double>(
            LineCompressor::compressedSize(gen.line(k), scheme));
    }
    return 64.0 * samples / compressed;
}

} // namespace ena

/**
 * @file
 * Set-associative cache (functional content tracking + hit/miss stats).
 *
 * Used as the per-CU L1 and per-chiplet L2 in the cycle-level simulator.
 * Timing (hit latency, miss handling) is the owner's responsibility; the
 * cache answers hit/miss, performs fills/evictions, and tracks dirty
 * state for writeback traffic accounting.
 */

#ifndef ENA_MEM_CACHE_HH
#define ENA_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace ena {

/** Replacement policies available per cache instance. */
enum class ReplPolicy
{
    Lru,
    Fifo,
    Random,
};

struct CacheParams
{
    std::uint64_t sizeBytes = 2ull << 20;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
    ReplPolicy policy = ReplPolicy::Lru;
};

/** Result of one access. */
struct CacheOutcome
{
    bool hit = false;
    /** A dirty line was evicted and must be written back. */
    bool writeback = false;
    /** Address of the evicted line (valid when writeback). */
    std::uint64_t victimAddr = 0;
};

class Cache
{
  public:
    explicit Cache(const CacheParams &params, std::uint64_t seed = 1);

    /**
     * Access one address: on a miss the line is filled (allocate-on-miss
     * for both reads and writes) and the victim reported.
     */
    CacheOutcome access(std::uint64_t addr, bool is_write);

    /** Hit check without side effects. */
    bool probe(std::uint64_t addr) const;

    /** Drop a line if present; returns true when it was dirty. */
    bool invalidate(std::uint64_t addr);

    /** Invalidate everything (kernel boundary). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    double
    hitRate() const
    {
        std::uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(hits_) / n : 0.0;
    }

    std::uint32_t numSets() const { return numSets_; }
    const CacheParams &params() const { return params_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t stamp = 0;   ///< LRU: last use; FIFO: fill time
    };

    std::uint32_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
    std::uint64_t lineAddr(std::uint32_t set, std::uint64_t tag) const;
    std::uint32_t pickVictim(std::uint32_t set);

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Line> lines_;   ///< numSets_ x ways, row-major
    std::uint64_t tick_ = 0;    ///< logical access counter for stamps
    Rng rng_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace ena

#endif // ENA_MEM_CACHE_HH

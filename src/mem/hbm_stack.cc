#include "mem/hbm_stack.hh"

#include <algorithm>
#include <cmath>

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

HbmParams
HbmParams::forAggregateBandwidth(double total_gbs, int stacks)
{
    ENA_ASSERT(total_gbs > 0.0 && stacks > 0, "bad HBM sizing");
    HbmParams p;
    double per_stack = total_gbs / stacks;
    p.bytesPerCycle = per_stack / (p.channels * p.clockGhz);
    return p;
}

HbmStack::HbmStack(Simulation &sim, const std::string &name,
                   HbmParams params)
    : SimObject(sim, name), params_(params),
      statReads_(sim.stats(), name + ".reads", "read accesses"),
      statWrites_(sim.stats(), name + ".writes", "write accesses"),
      statBytes_(sim.stats(), name + ".bytes", "bytes served"),
      statRowHits_(sim.stats(), name + ".rowHits", "row-buffer hits"),
      statRowMisses_(sim.stats(), name + ".rowMisses",
                     "row-buffer misses"),
      statLatency_(sim.stats(), name + ".latency",
                   "access latency (ns)", 0.0, 500.0, 50)
{
    ENA_ASSERT(params_.channels > 0 && params_.banksPerChannel > 0,
               "bad HBM geometry");
    channels_.resize(params_.channels);
    for (Channel &ch : channels_) {
        ch.openRow.assign(params_.banksPerChannel, ~std::uint64_t(0));
    }
}

std::uint32_t
HbmStack::channelOf(std::uint64_t addr) const
{
    // Interleave channels at line granularity for bandwidth spreading.
    return static_cast<std::uint32_t>((addr / params_.lineBytes) %
                                      params_.channels);
}

std::uint32_t
HbmStack::bankOf(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>(
        (addr / params_.rowBytes) % params_.banksPerChannel);
}

std::uint64_t
HbmStack::rowOf(std::uint64_t addr) const
{
    return addr / (static_cast<std::uint64_t>(params_.rowBytes) *
                   params_.banksPerChannel * params_.channels);
}

void
HbmStack::access(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                 Callback done)
{
    ENA_ASSERT(done, "HBM access needs a completion callback");
    Channel &ch = channels_[channelOf(addr)];
    std::uint32_t bank = bankOf(addr);
    std::uint64_t row = rowOf(addr);

    bool row_hit = ch.openRow[bank] == row;
    ch.openRow[bank] = row;
    if (row_hit)
        ++statRowHits_;
    else
        ++statRowMisses_;

    double access_ns = row_hit ? params_.rowHitNs : params_.rowMissNs;
    Tick access_ticks = static_cast<Tick>(access_ns * tickPerNs);
    double burst_cycles =
        static_cast<double>(bytes) / params_.bytesPerCycle;
    Tick burst_ticks = std::max<Tick>(
        1, static_cast<Tick>(
               std::ceil(burst_cycles * clockPeriod(params_.clockGhz))));

    Tick start = std::max(curTick(), ch.busyUntil);
    Tick finish = start + access_ticks + burst_ticks;
    // The data bus is occupied for the burst; the bank-access time
    // overlaps with other banks' work, so only the burst serializes.
    ch.busyUntil = start + burst_ticks;

    if (is_write)
        ++statWrites_;
    else
        ++statReads_;
    statBytes_ += bytes;
    statLatency_.sample(static_cast<double>(finish - curTick()) /
                        tickPerNs);

    eventq().scheduleLambda(finish, std::move(done), "hbm completion");
}

Tick
HbmStack::peekServiceLatency(std::uint64_t addr) const
{
    const Channel &ch = channels_[channelOf(addr)];
    std::uint32_t bank = bankOf(addr);
    bool row_hit = ch.openRow[bank] == rowOf(addr);
    double access_ns = row_hit ? params_.rowHitNs : params_.rowMissNs;
    Tick start = std::max(curTick(), ch.busyUntil);
    return (start - curTick()) +
           static_cast<Tick>(access_ns * tickPerNs);
}

double
HbmStack::rowHitRate() const
{
    double total = statRowHits_.value() + statRowMisses_.value();
    return total > 0.0 ? statRowHits_.value() / total : 0.0;
}

} // namespace ena

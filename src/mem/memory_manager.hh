/**
 * @file
 * Multi-level memory management (paper Section II-B3).
 *
 * The ENA exposes (at least) two memory levels: in-package 3D DRAM and
 * the external-memory network. This functional model implements the
 * paper's three modes:
 *
 *  - SoftwareManaged: the OS monitors page hotness and migrates hot
 *    pages into in-package DRAM at epoch boundaries (the primary mode).
 *  - HwCache: in-package DRAM acts as a page-granularity hardware cache
 *    of the external space (sacrifices addressable capacity).
 *  - StaticInterleave: pages statically spread by capacity ratio
 *    (no migration; the lower-bound baseline).
 *
 * The model answers, per access, which level services it; the achieved
 * in-package hit fraction feeds the Fig. 8 sensitivity analysis.
 */

#ifndef ENA_MEM_MEMORY_MANAGER_HH
#define ENA_MEM_MEMORY_MANAGER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ena {

enum class MemLevel : std::uint8_t
{
    InPackage,
    External,
};

enum class MemMode
{
    SoftwareManaged,
    HwCache,
    StaticInterleave,
};

struct MemoryManagerParams
{
    MemMode mode = MemMode::SoftwareManaged;
    std::uint64_t pageBytes = 4096;
    std::uint64_t inPackageBytes = 256ull << 30;
    std::uint64_t externalBytes = 768ull << 30;
    /** SoftwareManaged: accesses between migration epochs. */
    std::uint64_t epochAccesses = 1u << 16;
    /** SoftwareManaged: max fraction of in-package pages replaced per
     *  epoch (migration bandwidth budget). */
    double migrateFraction = 0.02;
};

class MemoryManager
{
  public:
    explicit MemoryManager(const MemoryManagerParams &params);

    /** Which level services this access (updates placement state). */
    MemLevel access(std::uint64_t addr, bool is_write);

    /** Fraction of accesses serviced in-package so far. */
    double inPackageHitRate() const;

    /** Explicit user-level placement API (Section II-B3's user API). */
    void pin(std::uint64_t addr, std::uint64_t bytes, MemLevel level);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t inPackageAccesses() const { return inPkgAccesses_; }
    std::uint64_t migrations() const { return migrations_; }

    /** Addressable capacity (HwCache mode loses the cache's worth). */
    std::uint64_t addressableBytes() const;

    const MemoryManagerParams &params() const { return params_; }

  private:
    struct PageInfo
    {
        MemLevel level = MemLevel::External;
        std::uint64_t epochCount = 0;
        bool pinned = false;
    };

    std::uint64_t pageOf(std::uint64_t addr) const;
    MemLevel accessSoftware(std::uint64_t page);
    MemLevel accessHwCache(std::uint64_t page);
    MemLevel accessStatic(std::uint64_t page) const;
    void runEpochMigration();

    MemoryManagerParams params_;
    std::uint64_t inPkgPageCapacity_;

    // SoftwareManaged state.
    std::unordered_map<std::uint64_t, PageInfo> pages_;
    std::uint64_t inPkgPagesUsed_ = 0;
    std::uint64_t epochCounter_ = 0;

    // HwCache state: direct-mapped page tags.
    std::vector<std::uint64_t> cacheTags_;

    std::uint64_t accesses_ = 0;
    std::uint64_t inPkgAccesses_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace ena

#endif // ENA_MEM_MEMORY_MANAGER_HH

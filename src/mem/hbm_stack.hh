/**
 * @file
 * Timing model of one in-package 3D DRAM (HBM-class) stack.
 *
 * Channels contend independently; each channel models bank row-buffer
 * state (row hit vs row cycle), data-bus occupancy, and a FIFO service
 * horizon. Aggregate stack bandwidth = channels x bytesPerCycle x clock,
 * configured from the node's provisioned bandwidth.
 */

#ifndef ENA_MEM_HBM_STACK_HH
#define ENA_MEM_HBM_STACK_HH

#include <functional>
#include <vector>

#include "sim/sim_object.hh"

namespace ena {

struct HbmParams
{
    int channels = 8;
    int banksPerChannel = 16;
    double clockGhz = 1.0;
    double bytesPerCycle = 32.0;     ///< per channel data width
    std::uint32_t rowBytes = 2048;
    double rowHitNs = 18.0;          ///< CAS-limited access
    double rowMissNs = 42.0;         ///< precharge+activate+CAS
    std::uint32_t lineBytes = 64;

    /** Peak stack bandwidth in GB/s. */
    double
    peakGbs() const
    {
        return channels * bytesPerCycle * clockGhz;
    }

    /**
     * Parameters for one of @p stacks stacks providing an aggregate
     * @p total_gbs of in-package bandwidth.
     */
    static HbmParams forAggregateBandwidth(double total_gbs, int stacks);
};

class HbmStack : public SimObject
{
  public:
    using Callback = std::function<void()>;

    HbmStack(Simulation &sim, const std::string &name, HbmParams params);

    /**
     * Issue one access; @p done runs at completion time.
     * Addresses map to channels/banks/rows by block interleaving.
     */
    void access(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                Callback done);

    /** Completion tick an access issued now would see (no side effects
     *  beyond reserving the channel — used by tests). */
    Tick peekServiceLatency(std::uint64_t addr) const;

    const HbmParams &params() const { return params_; }

    double rowHitRate() const;
    double bytesServed() const { return statBytes_.value(); }

  private:
    struct Channel
    {
        Tick busyUntil = 0;
        std::vector<std::uint64_t> openRow;   ///< per bank
    };

    std::uint32_t channelOf(std::uint64_t addr) const;
    std::uint32_t bankOf(std::uint64_t addr) const;
    std::uint64_t rowOf(std::uint64_t addr) const;

    HbmParams params_;
    std::vector<Channel> channels_;

    StatScalar statReads_;
    StatScalar statWrites_;
    StatScalar statBytes_;
    StatScalar statRowHits_;
    StatScalar statRowMisses_;
    StatDistribution statLatency_;
};

} // namespace ena

#endif // ENA_MEM_HBM_STACK_HH

#include "mem/ext_memory.hh"

#include <algorithm>
#include <cmath>

#include "sim/simulation.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace ena {

ExternalMemoryNetwork::ExternalMemoryNetwork(Simulation &sim,
                                             const std::string &name,
                                             const ExtMemConfig &cfg,
                                             ExtMemTiming timing)
    : SimObject(sim, name), timing_(timing),
      statReads_(sim.stats(), name + ".reads", "read accesses"),
      statWrites_(sim.stats(), name + ".writes", "write accesses"),
      statBytes_(sim.stats(), name + ".bytes", "bytes served"),
      statNvmAccesses_(sim.stats(), name + ".nvmAccesses",
                       "accesses served by NVM modules"),
      statLatency_(sim.stats(), name + ".latency",
                   "access latency (ns)", 0.0, 2000.0, 50)
{
    ENA_ASSERT(cfg.interfaces > 0, "need at least one interface");
    timing_.interfaceGbs = cfg.interfaceGbs;
    chains_.resize(cfg.interfaces);

    // DRAM modules round-robin first (latency-critical, near the
    // package), then NVM modules at the chain tails.
    int dram = cfg.dramModules();
    int nvm = cfg.nvmModules();
    size_t rr = 0;
    for (int i = 0; i < dram; ++i, ++rr) {
        chains_[rr % chains_.size()].modules.push_back(
            {ExtMemTech::Dram, cfg.dramModuleGb});
    }
    for (int i = 0; i < nvm; ++i, ++rr) {
        chains_[rr % chains_.size()].modules.push_back(
            {ExtMemTech::Nvm, cfg.nvmModuleGb});
    }
    for (Chain &c : chains_) {
        for (const Module &m : c.modules)
            c.capacityGb += m.capacityGb;
        if (c.modules.empty())
            ENA_FATAL("external-memory interface with no modules; "
                      "reduce cfg.interfaces or add capacity");
    }
}

int
ExternalMemoryNetwork::totalModules() const
{
    int n = 0;
    for (const Chain &c : chains_)
        n += static_cast<int>(c.modules.size());
    return n;
}

void
ExternalMemoryNetwork::locate(std::uint64_t addr, int &chain,
                              int &module) const
{
    std::uint64_t stripe = addr / interleaveBytes_;
    chain = static_cast<int>(stripe % chains_.size());
    const Chain &c = chains_[chain];

    // Within a chain, interleave stripes across modules weighted by
    // capacity: module j owns capacity_j/total of the stripes.
    std::uint64_t intra = stripe / chains_.size();
    double total = c.capacityGb;
    double u = static_cast<double>(intra % 1024) / 1024.0 * total;
    double acc = 0.0;
    for (size_t j = 0; j < c.modules.size(); ++j) {
        acc += c.modules[j].capacityGb;
        if (u < acc) {
            module = static_cast<int>(j);
            return;
        }
    }
    module = static_cast<int>(c.modules.size() - 1);
}

int
ExternalMemoryNetwork::chainDepthOf(std::uint64_t addr) const
{
    int chain = 0;
    int module = 0;
    locate(addr, chain, module);
    return module;
}

ExtMemTech
ExternalMemoryNetwork::techOf(std::uint64_t addr) const
{
    int chain = 0;
    int module = 0;
    locate(addr, chain, module);
    return chains_[chain].modules[module].tech;
}

void
ExternalMemoryNetwork::access(std::uint64_t addr, std::uint32_t bytes,
                              bool is_write, Callback done)
{
    ENA_ASSERT(done, "external access needs a completion callback");
    int ci = 0;
    int mi = 0;
    locate(addr, ci, mi);
    Chain &chain = chains_[ci];
    const Module &mod = chain.modules[mi];

    // Serialization on the interface's first SerDes link.
    double ser_ns = static_cast<double>(bytes) /
                    (timing_.interfaceGbs * units::giga) / units::nano;
    Tick ser = std::max<Tick>(
        1, static_cast<Tick>(std::ceil(ser_ns * tickPerNs)));
    Tick start = std::max(curTick(), chain.busyUntil);
    chain.busyUntil = start + ser;

    // Hop to the module and back, plus device access.
    double hops_ns = 2.0 * (mi + 1) * timing_.serdesHopNs;
    double dev_ns;
    if (mod.tech == ExtMemTech::Dram) {
        dev_ns = timing_.dramAccessNs;
    } else {
        dev_ns = is_write ? timing_.nvmWriteNs : timing_.nvmReadNs;
        ++statNvmAccesses_;
    }
    Tick finish =
        start + ser +
        static_cast<Tick>((hops_ns + dev_ns) * tickPerNs);

    if (is_write)
        ++statWrites_;
    else
        ++statReads_;
    statBytes_ += bytes;
    statLatency_.sample(static_cast<double>(finish - curTick()) /
                        tickPerNs);
    eventq().scheduleLambda(finish, std::move(done), "extmem completion");
}

} // namespace ena

#include "mem/memory_manager.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ena {

MemoryManager::MemoryManager(const MemoryManagerParams &params)
    : params_(params),
      inPkgPageCapacity_(params.inPackageBytes / params.pageBytes)
{
    ENA_ASSERT(params_.pageBytes > 0, "zero page size");
    ENA_ASSERT(inPkgPageCapacity_ > 0, "in-package capacity too small");
    if (params_.mode == MemMode::HwCache)
        cacheTags_.assign(inPkgPageCapacity_, ~std::uint64_t(0));
}

std::uint64_t
MemoryManager::pageOf(std::uint64_t addr) const
{
    return addr / params_.pageBytes;
}

std::uint64_t
MemoryManager::addressableBytes() const
{
    if (params_.mode == MemMode::HwCache)
        return params_.externalBytes;
    return params_.inPackageBytes + params_.externalBytes;
}

MemLevel
MemoryManager::access(std::uint64_t addr, bool is_write)
{
    (void)is_write;   // placement is write-agnostic in all three modes
    ++accesses_;
    std::uint64_t page = pageOf(addr);
    MemLevel level;
    switch (params_.mode) {
      case MemMode::SoftwareManaged:
        level = accessSoftware(page);
        break;
      case MemMode::HwCache:
        level = accessHwCache(page);
        break;
      case MemMode::StaticInterleave:
        level = accessStatic(page);
        break;
      default:
        ENA_PANIC("unknown memory mode");
    }
    if (level == MemLevel::InPackage)
        ++inPkgAccesses_;
    return level;
}

MemLevel
MemoryManager::accessSoftware(std::uint64_t page)
{
    auto [it, is_new] = pages_.try_emplace(page);
    PageInfo &info = it->second;
    // First touch: allocate in-package while capacity remains.
    if (is_new && inPkgPagesUsed_ < inPkgPageCapacity_) {
        info.level = MemLevel::InPackage;
        ++inPkgPagesUsed_;
    }
    ++info.epochCount;
    MemLevel level = info.level;

    if (++epochCounter_ >= params_.epochAccesses) {
        runEpochMigration();
        epochCounter_ = 0;
    }
    return level;
}

void
MemoryManager::runEpochMigration()
{
    // Gather candidates: hot external pages and cold in-package pages.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hot_ext;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cold_in;
    for (auto &[page, info] : pages_) {
        if (info.pinned)
            continue;
        if (info.level == MemLevel::External && info.epochCount > 0)
            hot_ext.emplace_back(info.epochCount, page);
        else if (info.level == MemLevel::InPackage)
            cold_in.emplace_back(info.epochCount, page);
    }
    std::sort(hot_ext.rbegin(), hot_ext.rend());   // hottest first
    std::sort(cold_in.begin(), cold_in.end());     // coldest first

    std::uint64_t budget = static_cast<std::uint64_t>(
        params_.migrateFraction * static_cast<double>(
                                      inPkgPageCapacity_));
    budget = std::max<std::uint64_t>(budget, 1);

    size_t swaps = 0;
    for (size_t i = 0; i < hot_ext.size() && swaps < budget; ++i) {
        std::uint64_t ext_page = hot_ext[i].second;
        std::uint64_t ext_count = hot_ext[i].first;
        if (inPkgPagesUsed_ < inPkgPageCapacity_) {
            pages_[ext_page].level = MemLevel::InPackage;
            ++inPkgPagesUsed_;
            ++migrations_;
            ++swaps;
            continue;
        }
        if (swaps >= cold_in.size())
            break;
        // Swap only when the external page is hotter than the coldest
        // remaining in-package page.
        if (ext_count <= cold_in[swaps].first)
            break;
        pages_[cold_in[swaps].second].level = MemLevel::External;
        pages_[ext_page].level = MemLevel::InPackage;
        migrations_ += 2;
        ++swaps;
    }

    for (auto &[page, info] : pages_)
        info.epochCount = 0;
}

MemLevel
MemoryManager::accessHwCache(std::uint64_t page)
{
    std::uint64_t set = page % inPkgPageCapacity_;
    if (cacheTags_[set] == page)
        return MemLevel::InPackage;
    // Miss: fill (the external access happens now; subsequent accesses
    // to this page hit in-package).
    cacheTags_[set] = page;
    ++migrations_;
    return MemLevel::External;
}

MemLevel
MemoryManager::accessStatic(std::uint64_t page) const
{
    // Hash pages across the combined capacity by ratio.
    std::uint64_t z = page + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    double in_frac =
        static_cast<double>(params_.inPackageBytes) /
        static_cast<double>(params_.inPackageBytes +
                            params_.externalBytes);
    return u < in_frac ? MemLevel::InPackage : MemLevel::External;
}

void
MemoryManager::pin(std::uint64_t addr, std::uint64_t bytes,
                   MemLevel level)
{
    if (params_.mode != MemMode::SoftwareManaged)
        ENA_FATAL("pin() requires SoftwareManaged mode");
    std::uint64_t first = pageOf(addr);
    std::uint64_t last = pageOf(addr + (bytes ? bytes - 1 : 0));
    for (std::uint64_t p = first; p <= last; ++p) {
        PageInfo &info = pages_[p];
        if (info.level != level) {
            if (level == MemLevel::InPackage) {
                if (inPkgPagesUsed_ >= inPkgPageCapacity_)
                    ENA_FATAL("pin: in-package capacity exhausted");
                ++inPkgPagesUsed_;
            } else if (info.level == MemLevel::InPackage) {
                --inPkgPagesUsed_;
            }
            info.level = level;
            ++migrations_;
        }
        info.pinned = true;
    }
}

double
MemoryManager::inPackageHitRate() const
{
    return accesses_ ? static_cast<double>(inPkgAccesses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
}

} // namespace ena

/**
 * @file
 * Physical-address to memory-stack mapping.
 *
 * Default policy is page-granularity interleaving across the eight
 * in-package stacks (the paper: "the memory interfaces are
 * address-interleaved"). Regions may additionally be registered with an
 * owner stack and a locality fraction, modeling NUMA-aware placement by
 * the OS/runtime (Section II-B3's software-managed mode): that fraction
 * of the region's pages map to the owner stack, the rest interleave.
 */

#ifndef ENA_MEM_ADDRESS_MAP_HH
#define ENA_MEM_ADDRESS_MAP_HH

#include <cstdint>
#include <vector>

namespace ena {

class AddressMap
{
  public:
    AddressMap(int num_stacks, std::uint64_t page_bytes = 4096);

    /**
     * Register a placement region.
     * @param owner stack preferred for this region's pages
     * @param local_frac fraction of pages placed on the owner stack
     */
    void addRegion(std::uint64_t base, std::uint64_t size, int owner,
                   double local_frac);

    /** Home stack of an address. */
    int stackFor(std::uint64_t addr) const;

    int numStacks() const { return numStacks_; }
    std::uint64_t pageBytes() const { return pageBytes_; }

  private:
    struct Region
    {
        std::uint64_t base;
        std::uint64_t size;
        int owner;
        double localFrac;
    };

    static std::uint64_t hashPage(std::uint64_t page);

    int numStacks_;
    std::uint64_t pageBytes_;
    std::vector<Region> regions_;
};

} // namespace ena

#endif // ENA_MEM_ADDRESS_MAP_HH

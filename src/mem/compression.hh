/**
 * @file
 * Cache-line compression for DRAM-traffic reduction (paper Section
 * V-E: "apply data compression to the network messages" between the
 * LLC and in-package memory).
 *
 * Implements the two classic hardware-friendly schemes:
 *
 *  - FPC (Frequent Pattern Compression, Alameldeen & Wood): each
 *    32-bit word is matched against a small pattern table (zero,
 *    sign-extended 4/8/16-bit, halfword padded, repeated byte) with a
 *    3-bit prefix per word;
 *  - BDI (Base-Delta-Immediate, Pekhimenko et al.): the line is
 *    encoded as one base plus small deltas, trying
 *    (base, delta) sizes of (8,1), (8,2), (8,4), (4,1), (4,2), (2,1),
 *    plus the zero-line and repeated-value special cases.
 *
 * A SyntheticData generator produces cache lines with the value
 * locality characteristic of each proxy application (smooth fp64
 * fields, index arrays, random lookup tables), and
 * TrafficCompressionModel measures the achieved ratios — the mechanism
 * behind the per-application compressRatio the power model consumes.
 */

#ifndef ENA_MEM_COMPRESSION_HH
#define ENA_MEM_COMPRESSION_HH

#include <array>
#include <cstdint>

#include "util/rng.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** One 64-byte cache line. */
using CacheLine = std::array<std::uint8_t, 64>;

enum class CompressScheme
{
    Fpc,
    Bdi,
    Best,   ///< min(FPC, BDI), as a dual-scheme encoder would pick
};

class LineCompressor
{
  public:
    /** Compressed size in bytes (<= 64; 64 means incompressible). */
    static size_t compressedSize(const CacheLine &line,
                                 CompressScheme scheme);

    /** FPC: 3-bit prefix per 32-bit word plus pattern payloads. */
    static size_t fpcSize(const CacheLine &line);

    /** BDI: best of the base+delta encodings and special cases. */
    static size_t bdiSize(const CacheLine &line);

    /** Ratio 64 / compressedSize (>= 1). */
    static double
    ratio(const CacheLine &line, CompressScheme scheme)
    {
        return 64.0 / static_cast<double>(compressedSize(line, scheme));
    }
};

/** Kinds of application data (what the lines hold). */
enum class DataKind
{
    ZeroFill,       ///< freshly allocated / cleared buffers
    SmoothField,    ///< fp64 PDE fields: neighbors differ slightly
    IndexArray,     ///< 32-bit connectivity / neighbor lists
    RandomTable,    ///< high-entropy lookup tables (XSBench cross
                    ///< sections)
    Mixed,          ///< structs of the above
};

/** Generates cache lines with a given value-locality character. */
class SyntheticData
{
  public:
    explicit SyntheticData(std::uint64_t seed = 99) : rng_(seed) {}

    CacheLine line(DataKind kind);

  private:
    Rng rng_;
};

class TrafficCompressionModel
{
  public:
    /**
     * Mean compression ratio of @p samples lines drawn from the data
     * mix characteristic of @p app.
     */
    double measureRatio(App app, CompressScheme scheme,
                        int samples = 2000,
                        std::uint64_t seed = 7) const;

    /** The data-kind mix this model assumes for an application. */
    static DataKind dominantKind(App app);
};

} // namespace ena

#endif // ENA_MEM_COMPRESSION_HH

#include "mem/address_map.hh"

#include "util/logging.hh"

namespace ena {

AddressMap::AddressMap(int num_stacks, std::uint64_t page_bytes)
    : numStacks_(num_stacks), pageBytes_(page_bytes)
{
    ENA_ASSERT(num_stacks > 0, "need at least one stack");
    ENA_ASSERT(page_bytes > 0, "need a positive page size");
}

void
AddressMap::addRegion(std::uint64_t base, std::uint64_t size, int owner,
                      double local_frac)
{
    ENA_ASSERT(owner >= 0 && owner < numStacks_, "bad owner stack ",
               owner);
    ENA_ASSERT(local_frac >= 0.0 && local_frac <= 1.0,
               "bad locality fraction ", local_frac);
    regions_.push_back({base, size, owner, local_frac});
}

std::uint64_t
AddressMap::hashPage(std::uint64_t page)
{
    // SplitMix64 finalizer: decorrelates page number from placement.
    std::uint64_t z = page + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

int
AddressMap::stackFor(std::uint64_t addr) const
{
    std::uint64_t page = addr / pageBytes_;
    for (const Region &r : regions_) {
        if (addr >= r.base && addr < r.base + r.size) {
            double u = static_cast<double>(hashPage(page) >> 11) *
                       0x1.0p-53;
            if (u < r.localFrac)
                return r.owner;
            break;
        }
    }
    return static_cast<int>(page % numStacks_);
}

} // namespace ena

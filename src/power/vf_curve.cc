#include "power/vf_curve.hh"

#include <algorithm>

#include "common/calibration.hh"
#include "util/logging.hh"
#include "util/stats_math.hh"

namespace ena {

VfCurve::VfCurve()
    : base_(cal::vfBase), slope_(cal::vfSlope), vMin_(0.45),
      vNominal_(cal::vNominal)
{
}

VfCurve::VfCurve(double base, double slope, double v_min, double v_nominal)
    : base_(base), slope_(slope), vMin_(v_min), vNominal_(v_nominal)
{
    ENA_ASSERT(slope >= 0.0 && v_nominal > 0.0, "bad VF curve parameters");
}

double
VfCurve::voltage(double f_ghz) const
{
    ENA_ASSERT(f_ghz > 0.0, "voltage() needs positive frequency");
    return std::max(vMin_, base_ + slope_ * f_ghz);
}

double
VfCurve::voltageNtc(double f_ghz) const
{
    double fade = clamp((cal::ntcZeroDropGhz - f_ghz) /
                            (cal::ntcZeroDropGhz - cal::ntcFullDropGhz),
                        0.0, 1.0);
    return std::max(vMin_, voltage(f_ghz) - cal::ntcDropVolts * fade);
}

double
VfCurve::dynScale(double f_ghz, bool ntc) const
{
    double v = ntc ? voltageNtc(f_ghz) : voltage(f_ghz);
    double r = v / vNominal_;
    return r * r;
}

double
VfCurve::staticScale(double f_ghz, bool ntc) const
{
    double v = ntc ? voltageNtc(f_ghz) : voltage(f_ghz);
    return v / vNominal_;
}

} // namespace ena

/**
 * @file
 * Technology-scaling model.
 *
 * The paper's high-level simulator projects measured power from current
 * hardware to the exascale-timeframe process node using in-house
 * technology-scaling models. We provide an equivalent parametric model:
 * per-generation capacitance, leakage, and Vmin scaling factors, used to
 * project per-CU energy from a measured reference node to the target
 * node. The defaults are conservative published estimates for the
 * 14nm -> 7nm-class transition window the paper targets (2022-2023).
 */

#ifndef ENA_POWER_TECH_MODEL_HH
#define ENA_POWER_TECH_MODEL_HH

#include <string>
#include <vector>

namespace ena {

/** One process generation's characteristics relative to the previous. */
struct TechGeneration
{
    std::string name;       ///< e.g. "14nm"
    double capScale;        ///< switched capacitance vs previous node
    double leakScale;       ///< leakage per device vs previous node
    double vminScale;       ///< minimum operating voltage vs previous
    double areaScale;       ///< device area vs previous node
};

class TechModel
{
  public:
    /** Default roadmap: 28nm -> 14nm -> 10nm -> 7nm. */
    TechModel();

    explicit TechModel(std::vector<TechGeneration> roadmap);

    /** Number of known generations. */
    size_t generations() const { return roadmap_.size(); }

    /** Index of a named node; fatal() if unknown. */
    size_t indexOf(const std::string &name) const;

    /**
     * Cumulative scale factors when moving from node @p from to node
     * @p to (later node => factors < 1 for cap/leak/area).
     */
    double capacitanceScale(const std::string &from,
                            const std::string &to) const;
    double leakageScale(const std::string &from,
                        const std::string &to) const;
    double areaScale(const std::string &from, const std::string &to) const;

    /**
     * Project a per-CU dynamic energy (W per GHz) measured on @p from
     * to @p to.
     */
    double projectCuDynW(double measured, const std::string &from,
                         const std::string &to) const;

    /** Project per-CU leakage power similarly. */
    double projectCuLeakW(double measured, const std::string &from,
                          const std::string &to) const;

  private:
    double cumulative(const std::string &from, const std::string &to,
                      double TechGeneration::*field) const;

    std::vector<TechGeneration> roadmap_;
};

} // namespace ena

#endif // ENA_POWER_TECH_MODEL_HH

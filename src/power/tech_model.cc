#include "power/tech_model.hh"

#include "util/logging.hh"

namespace ena {

TechModel::TechModel()
    : roadmap_({
          {"28nm", 1.00, 1.00, 1.00, 1.00},
          {"14nm", 0.62, 0.85, 0.95, 0.52},
          {"10nm", 0.75, 0.90, 0.97, 0.60},
          {"7nm", 0.72, 0.92, 0.97, 0.62},
      })
{
}

TechModel::TechModel(std::vector<TechGeneration> roadmap)
    : roadmap_(std::move(roadmap))
{
    if (roadmap_.empty())
        ENA_FATAL("TechModel requires at least one generation");
}

size_t
TechModel::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < roadmap_.size(); ++i) {
        if (roadmap_[i].name == name)
            return i;
    }
    ENA_FATAL("unknown technology node '", name, "'");
}

double
TechModel::cumulative(const std::string &from, const std::string &to,
                      double TechGeneration::*field) const
{
    size_t a = indexOf(from);
    size_t b = indexOf(to);
    if (a == b)
        return 1.0;
    if (a > b)
        // Backwards projection: invert the forward factors.
        return 1.0 / cumulative(to, from, field);
    double scale = 1.0;
    for (size_t i = a + 1; i <= b; ++i)
        scale *= roadmap_[i].*field;
    return scale;
}

double
TechModel::capacitanceScale(const std::string &from,
                            const std::string &to) const
{
    return cumulative(from, to, &TechGeneration::capScale);
}

double
TechModel::leakageScale(const std::string &from,
                        const std::string &to) const
{
    return cumulative(from, to, &TechGeneration::leakScale);
}

double
TechModel::areaScale(const std::string &from, const std::string &to) const
{
    return cumulative(from, to, &TechGeneration::areaScale);
}

double
TechModel::projectCuDynW(double measured, const std::string &from,
                         const std::string &to) const
{
    return measured * capacitanceScale(from, to);
}

double
TechModel::projectCuLeakW(double measured, const std::string &from,
                          const std::string &to) const
{
    return measured * leakageScale(from, to);
}

} // namespace ena

/**
 * @file
 * Node-level power model: per-component breakdown for one ENA node
 * running one application, mirroring the categories of the paper's
 * Fig. 9 (SerDes static/dynamic, external memory static/dynamic, CU
 * dynamic, Other).
 */

#ifndef ENA_POWER_NODE_POWER_HH
#define ENA_POWER_NODE_POWER_HH

#include <string>

#include "common/activity.hh"
#include "common/node_config.hh"
#include "power/vf_curve.hh"

namespace ena {

/** Watts per node component; see NodePowerModel::evaluate(). */
struct PowerBreakdown
{
    double cuDyn = 0.0;
    double cuStatic = 0.0;
    double nocDyn = 0.0;
    double nocStatic = 0.0;
    double hbmDyn = 0.0;
    double hbmStatic = 0.0;
    double cpu = 0.0;
    double sys = 0.0;
    double extMemDyn = 0.0;
    double extMemStatic = 0.0;
    double serdesDyn = 0.0;
    double serdesStatic = 0.0;

    /** EHP package + in-package memory power (the DSE budget scope also
     *  adds external static power; see budgetPower()). */
    double
    packagePower() const
    {
        return cuDyn + cuStatic + nocDyn + nocStatic + hbmDyn + hbmStatic +
               cpu + sys;
    }

    /** External-memory subsystem power (Fig. 9's four external bars). */
    double
    externalPower() const
    {
        return extMemDyn + extMemStatic + serdesDyn + serdesStatic;
    }

    /**
     * Power against the 160 W node budget: the package plus the
     * provisioned (static) external-memory power. Application-dependent
     * external dynamic power is excluded, matching the paper's use of a
     * single per-node budget alongside Fig. 9 totals that exceed it.
     */
    double
    budgetPower() const
    {
        return packagePower() + extMemStatic + serdesStatic;
    }

    /** Total ENA power (Fig. 9 y-axis). */
    double total() const { return packagePower() + externalPower(); }

    /** Fig. 9's "Other" grouping: everything but CU dynamic and the
     *  external components. */
    double
    other() const
    {
        return total() - cuDyn - externalPower();
    }

    /** Component-wise sum (for averaging across applications). */
    PowerBreakdown &operator+=(const PowerBreakdown &o);
    PowerBreakdown &operator*=(double k);
};

/**
 * Evaluates the per-component power of a node configuration under a
 * given application activity vector. Stateless apart from the VF curve.
 */
class NodePowerModel
{
  public:
    NodePowerModel() = default;

    /**
     * Compute the power breakdown.
     * @param cfg node hardware configuration (cfg.opts selects the
     *            Section V-E optimizations)
     * @param act application activity from the performance model
     */
    PowerBreakdown evaluate(const NodeConfig &cfg,
                            const Activity &act) const;

    const VfCurve &vfCurve() const { return vf_; }

  private:
    VfCurve vf_;
};

} // namespace ena

#endif // ENA_POWER_NODE_POWER_HH

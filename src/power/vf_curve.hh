/**
 * @file
 * Voltage-frequency curve for the GPU voltage domain, including the
 * near-threshold-computing (NTC) variant from Section V-E.
 *
 * The paper's power methodology scales measured power with in-house
 * voltage-frequency curves; we model a linear V(f) around a nominal
 * point (0.8 V @ 1 GHz) which is representative of published
 * FinFET-generation GPU DVFS curves.
 */

#ifndef ENA_POWER_VF_CURVE_HH
#define ENA_POWER_VF_CURVE_HH

namespace ena {

class VfCurve
{
  public:
    /** Curve with default calibration constants. */
    VfCurve();

    /** Custom curve (volts = base + slope * f_ghz, clamped to vmin). */
    VfCurve(double base, double slope, double v_min, double v_nominal);

    /** Supply voltage at @p f_ghz on the standard curve. */
    double voltage(double f_ghz) const;

    /**
     * Supply voltage with NTC circuits enabled: a fixed reduction that
     * is sustainable up to ~1 GHz and fades to zero at higher
     * frequencies (variability margins grow with frequency).
     */
    double voltageNtc(double f_ghz) const;

    /** Nominal voltage used for normalizing dynamic power. */
    double nominal() const { return vNominal_; }

    /**
     * Dynamic-power scale factor (V/Vnom)^2 at @p f_ghz.
     * @param ntc use the NTC curve.
     */
    double dynScale(double f_ghz, bool ntc = false) const;

    /** Static-power scale factor ~ (V/Vnom) at @p f_ghz. */
    double staticScale(double f_ghz, bool ntc = false) const;

  private:
    double base_;
    double slope_;
    double vMin_;
    double vNominal_;
};

} // namespace ena

#endif // ENA_POWER_VF_CURVE_HH

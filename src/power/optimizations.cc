#include "power/optimizations.hh"

#include "util/logging.hh"

namespace ena {

std::string
powerOptName(PowerOpt opt)
{
    switch (opt) {
      case PowerOpt::Ntc: return "NTC";
      case PowerOpt::AsyncCu: return "Async. CUs";
      case PowerOpt::AsyncRouter: return "Async. routers";
      case PowerOpt::LpLinks: return "Low-power links";
      case PowerOpt::Compression: return "Compression";
      case PowerOpt::All: return "All";
    }
    ENA_PANIC("unknown PowerOpt enum value");
}

const std::vector<PowerOpt> &
allPowerOpts()
{
    static const std::vector<PowerOpt> opts = {
        PowerOpt::Ntc,         PowerOpt::AsyncCu,
        PowerOpt::AsyncRouter, PowerOpt::LpLinks,
        PowerOpt::Compression, PowerOpt::All,
    };
    return opts;
}

PowerOptConfig
makeOptConfig(PowerOpt opt)
{
    PowerOptConfig cfg;
    switch (opt) {
      case PowerOpt::Ntc:
        cfg.ntc = true;
        break;
      case PowerOpt::AsyncCu:
        cfg.asyncCu = true;
        break;
      case PowerOpt::AsyncRouter:
        cfg.asyncRouter = true;
        break;
      case PowerOpt::LpLinks:
        cfg.lpLinks = true;
        break;
      case PowerOpt::Compression:
        cfg.compression = true;
        break;
      case PowerOpt::All:
        cfg = PowerOptConfig::all();
        break;
    }
    return cfg;
}

std::vector<OptSavings>
evaluateOptSavings(const NodePowerModel &model, NodeConfig cfg,
                   const Activity &act)
{
    cfg.opts = PowerOptConfig::none();
    double baseline = model.evaluate(cfg, act).budgetPower();

    std::vector<OptSavings> out;
    for (PowerOpt opt : allPowerOpts()) {
        cfg.opts = makeOptConfig(opt);
        double optimized = model.evaluate(cfg, act).budgetPower();
        out.push_back({opt, baseline, optimized,
                       1.0 - optimized / baseline});
    }
    return out;
}

} // namespace ena

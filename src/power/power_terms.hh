/**
 * @file
 * The node power model's arithmetic, factored into inline term
 * functions shared verbatim by the scalar oracle
 * (NodePowerModel::evaluate) and the batch evaluator — the power-side
 * twin of core/perf_terms.hh, with the same bit-identity contract:
 * both paths run the same IEEE-754 operation sequence, and each term's
 * parameter list names the NodeConfig fields it reads (its content
 * address for memoization).
 *
 * Do not reorder or reassociate the expressions here; the batch-vs-
 * scalar bit-identity gate depends on the exact rounding sequence.
 */

#ifndef ENA_POWER_POWER_TERMS_HH
#define ENA_POWER_POWER_TERMS_HH

#include <algorithm>
#include <cmath>

#include "common/activity.hh"
#include "common/calibration.hh"
#include "common/node_config.hh"
#include "power/node_power.hh"
#include "power/vf_curve.hh"
#include "util/units.hh"

namespace ena {
namespace power_terms {

/** VF-curve voltage scaling factors. Reads: freqGhz, opts.ntc. */
struct VfScales
{
    double dyn = 1.0;
    double stat = 1.0;
};

inline VfScales
vfScales(const VfCurve &vf, double freq_ghz, bool ntc)
{
    return {vf.dynScale(freq_ghz, ntc), vf.staticScale(freq_ghz, ntc)};
}

/** In-package DRAM static power (W). Reads: bwTbs, gpuChiplets. */
inline double
hbmStaticW(double bw_tbs, int gpu_chiplets)
{
    return cal::hbmStackStaticW * gpu_chiplets +
           cal::hbmBwStaticCoef * std::pow(bw_tbs, cal::hbmBwStaticExp);
}

/** Provisioned external-memory static power (W). Reads: ext. */
struct ExtStatic
{
    double extMemW = 0.0;
    double serdesW = 0.0;
};

inline ExtStatic
extStaticW(const ExtMemConfig &ext)
{
    return {cal::extDramStaticWPerGb * ext.dramGb +
                cal::extNvmStaticWPerGb * ext.nvmGb,
            cal::serdesLinkStaticW * ext.totalModules()};
}

/**
 * Composite: one full power evaluation from precomputed reusable
 * terms. vf, hbm_static, and ext_static must have been produced by
 * vfScales/hbmStaticW/extStaticW for the same config fields —
 * possibly served from a term cache (bit-identical by construction).
 *
 * The statement order mirrors NodePowerModel::evaluate() exactly.
 */
inline PowerBreakdown
evaluatePower(int cus, double freq_ghz, const PowerOptConfig &opt,
              const ExtMemConfig &ext, const Activity &act,
              const VfScales &vf, double hbm_static,
              const ExtStatic &ext_static)
{
    PowerBreakdown p;

    // ---- GPU compute units ------------------------------------------
    p.cuDyn = cal::cuDynWPerGhz * cus * freq_ghz * vf.dyn *
              act.cuActivity();
    if (opt.asyncCu)
        p.cuDyn *= cal::asyncCuDynFactor;
    p.cuStatic = cal::cuLeakW * cus * vf.stat;

    // ---- Interposer network ------------------------------------------
    // Compression shrinks the LLC<->memory share of NoC traffic by the
    // application's compressibility.
    double noc_traffic = act.nocTrafficGbs;
    if (opt.compression && act.compressRatio > 1.0) {
        double c = cal::nocLlcMemShare;
        noc_traffic *= (1.0 - c) + c / act.compressRatio;
    }
    double noc_dyn = units::powerFromEventRate(noc_traffic * units::giga,
                                               cal::nocPjPerByte);
    double router_dyn = noc_dyn * cal::nocRouterShare;
    double link_dyn = noc_dyn * cal::linkShareOfNoc;
    double noc_static = cal::nocStaticW;
    if (opt.asyncRouter) {
        router_dyn *= cal::asyncRouterDynFactor;
        noc_static *= cal::asyncRouterStaticFactor;
    }
    if (opt.lpLinks)
        link_dyn *= cal::lpLinkDynFactor;
    p.nocDyn = router_dyn + link_dyn;
    p.nocStatic = noc_static;

    // ---- In-package 3D DRAM ------------------------------------------
    double hbm_traffic = act.inPkgTrafficGbs;
    if (opt.compression && act.compressRatio > 1.0) {
        // Compressed lines also cross the DRAM interface packed.
        double c = cal::nocLlcMemShare;
        hbm_traffic *= (1.0 - c) + c / act.compressRatio;
    }
    p.hbmDyn = units::powerFromEventRate(hbm_traffic * units::giga,
                                         cal::hbmPjPerByte);
    p.hbmStatic = hbm_static;

    // ---- CPU cluster + system ----------------------------------------
    p.cpu = cal::cpuStaticW + cal::cpuMaxDynW * act.cpuActivity;
    p.sys = cal::sysStaticW;

    // ---- External memory network --------------------------------------
    p.extMemStatic = ext_static.extMemW;
    p.serdesStatic = ext_static.serdesW;

    double ext_traffic =
        std::min(act.extTrafficGbs, ext.aggregateGbs()) * units::giga;
    // Traffic splits across DRAM and NVM in proportion to capacity
    // (address-interleaved placement).
    double nvm_frac =
        ext.totalGb() > 0.0 ? ext.nvmGb / ext.totalGb() : 0.0;
    double dram_traffic = ext_traffic * (1.0 - nvm_frac);
    double nvm_traffic = ext_traffic * nvm_frac;
    double nvm_pj = cal::nvmReadPjPerByte * (1.0 - act.writeFraction) +
                    cal::nvmWritePjPerByte * act.writeFraction;
    p.extMemDyn =
        units::powerFromEventRate(dram_traffic, cal::extDramPjPerByte) +
        units::powerFromEventRate(nvm_traffic, nvm_pj);
    p.serdesDyn =
        units::powerFromEventRate(ext_traffic, cal::serdesPjPerByte);

    return p;
}

} // namespace power_terms
} // namespace ena

#endif // ENA_POWER_POWER_TERMS_HH

/**
 * @file
 * Power-optimization study helpers (paper Section V-E / Fig. 12): apply
 * each technique individually and in combination to a node configuration
 * and report the resulting system-power savings.
 */

#ifndef ENA_POWER_OPTIMIZATIONS_HH
#define ENA_POWER_OPTIMIZATIONS_HH

#include <string>
#include <vector>

#include "common/activity.hh"
#include "common/node_config.hh"
#include "power/node_power.hh"

namespace ena {

/** The individual techniques, in the paper's Fig. 12 legend order. */
enum class PowerOpt
{
    Ntc,
    AsyncCu,
    AsyncRouter,
    LpLinks,
    Compression,
    All,
};

/** Display name for one technique ("NTC", "Async. CUs", ...). */
std::string powerOptName(PowerOpt opt);

/** All individual techniques plus All, in Fig. 12 order. */
const std::vector<PowerOpt> &allPowerOpts();

/** PowerOptConfig with exactly one technique (or all) enabled. */
PowerOptConfig makeOptConfig(PowerOpt opt);

/** Savings of one technique for one (config, activity) pair. */
struct OptSavings
{
    PowerOpt opt;
    double baselineW;   ///< node budget-scope power without techniques
    double optimizedW;  ///< with the technique applied
    double savingsFrac; ///< 1 - optimized/baseline
};

/**
 * Evaluate Fig. 12 for one application activity: each technique alone,
 * then all together. The baseline (cfg.opts cleared) already includes
 * DVFS, as in the paper.
 */
std::vector<OptSavings> evaluateOptSavings(const NodePowerModel &model,
                                           NodeConfig cfg,
                                           const Activity &act);

} // namespace ena

#endif // ENA_POWER_OPTIMIZATIONS_HH

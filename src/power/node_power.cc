#include "power/node_power.hh"

#include <algorithm>
#include <cmath>

#include "common/calibration.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace ena {

PowerBreakdown &
PowerBreakdown::operator+=(const PowerBreakdown &o)
{
    cuDyn += o.cuDyn;
    cuStatic += o.cuStatic;
    nocDyn += o.nocDyn;
    nocStatic += o.nocStatic;
    hbmDyn += o.hbmDyn;
    hbmStatic += o.hbmStatic;
    cpu += o.cpu;
    sys += o.sys;
    extMemDyn += o.extMemDyn;
    extMemStatic += o.extMemStatic;
    serdesDyn += o.serdesDyn;
    serdesStatic += o.serdesStatic;
    return *this;
}

PowerBreakdown &
PowerBreakdown::operator*=(double k)
{
    cuDyn *= k;
    cuStatic *= k;
    nocDyn *= k;
    nocStatic *= k;
    hbmDyn *= k;
    hbmStatic *= k;
    cpu *= k;
    sys *= k;
    extMemDyn *= k;
    extMemStatic *= k;
    serdesDyn *= k;
    serdesStatic *= k;
    return *this;
}

PowerBreakdown
NodePowerModel::evaluate(const NodeConfig &cfg, const Activity &act) const
{
    cfg.validate();
    const PowerOptConfig &opt = cfg.opts;
    PowerBreakdown p;

    // ---- GPU compute units ------------------------------------------
    double dyn_scale = vf_.dynScale(cfg.freqGhz, opt.ntc);
    double stat_scale = vf_.staticScale(cfg.freqGhz, opt.ntc);

    p.cuDyn = cal::cuDynWPerGhz * cfg.cus * cfg.freqGhz * dyn_scale *
              act.cuActivity();
    if (opt.asyncCu)
        p.cuDyn *= cal::asyncCuDynFactor;
    p.cuStatic = cal::cuLeakW * cfg.cus * stat_scale;

    // ---- Interposer network ------------------------------------------
    // Compression shrinks the LLC<->memory share of NoC traffic by the
    // application's compressibility.
    double noc_traffic = act.nocTrafficGbs;
    if (opt.compression && act.compressRatio > 1.0) {
        double c = cal::nocLlcMemShare;
        noc_traffic *= (1.0 - c) + c / act.compressRatio;
    }
    double noc_dyn = units::powerFromEventRate(
        noc_traffic * units::giga, cal::nocPjPerByte);
    double router_dyn = noc_dyn * cal::nocRouterShare;
    double link_dyn = noc_dyn * cal::linkShareOfNoc;
    double noc_static = cal::nocStaticW;
    if (opt.asyncRouter) {
        router_dyn *= cal::asyncRouterDynFactor;
        noc_static *= cal::asyncRouterStaticFactor;
    }
    if (opt.lpLinks)
        link_dyn *= cal::lpLinkDynFactor;
    p.nocDyn = router_dyn + link_dyn;
    p.nocStatic = noc_static;

    // ---- In-package 3D DRAM ------------------------------------------
    double hbm_traffic = act.inPkgTrafficGbs;
    if (opt.compression && act.compressRatio > 1.0) {
        // Compressed lines also cross the DRAM interface packed.
        double c = cal::nocLlcMemShare;
        hbm_traffic *= (1.0 - c) + c / act.compressRatio;
    }
    p.hbmDyn = units::powerFromEventRate(hbm_traffic * units::giga,
                                         cal::hbmPjPerByte);
    p.hbmStatic = cal::hbmStackStaticW * cfg.gpuChiplets +
                  cal::hbmBwStaticCoef *
                      std::pow(cfg.bwTbs, cal::hbmBwStaticExp);

    // ---- CPU cluster + system ----------------------------------------
    p.cpu = cal::cpuStaticW + cal::cpuMaxDynW * act.cpuActivity;
    p.sys = cal::sysStaticW;

    // ---- External memory network --------------------------------------
    const ExtMemConfig &ext = cfg.ext;
    p.extMemStatic = cal::extDramStaticWPerGb * ext.dramGb +
                     cal::extNvmStaticWPerGb * ext.nvmGb;
    p.serdesStatic = cal::serdesLinkStaticW * ext.totalModules();

    double ext_traffic =
        std::min(act.extTrafficGbs, ext.aggregateGbs()) * units::giga;
    // Traffic splits across DRAM and NVM in proportion to capacity
    // (address-interleaved placement).
    double nvm_frac =
        ext.totalGb() > 0.0 ? ext.nvmGb / ext.totalGb() : 0.0;
    double dram_traffic = ext_traffic * (1.0 - nvm_frac);
    double nvm_traffic = ext_traffic * nvm_frac;
    double nvm_pj = cal::nvmReadPjPerByte * (1.0 - act.writeFraction) +
                    cal::nvmWritePjPerByte * act.writeFraction;
    p.extMemDyn =
        units::powerFromEventRate(dram_traffic, cal::extDramPjPerByte) +
        units::powerFromEventRate(nvm_traffic, nvm_pj);
    p.serdesDyn =
        units::powerFromEventRate(ext_traffic, cal::serdesPjPerByte);

    return p;
}

} // namespace ena

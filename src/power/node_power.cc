#include "power/node_power.hh"

#include <algorithm>
#include <cmath>

#include "common/calibration.hh"
#include "power/power_terms.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace ena {

PowerBreakdown &
PowerBreakdown::operator+=(const PowerBreakdown &o)
{
    cuDyn += o.cuDyn;
    cuStatic += o.cuStatic;
    nocDyn += o.nocDyn;
    nocStatic += o.nocStatic;
    hbmDyn += o.hbmDyn;
    hbmStatic += o.hbmStatic;
    cpu += o.cpu;
    sys += o.sys;
    extMemDyn += o.extMemDyn;
    extMemStatic += o.extMemStatic;
    serdesDyn += o.serdesDyn;
    serdesStatic += o.serdesStatic;
    return *this;
}

PowerBreakdown &
PowerBreakdown::operator*=(double k)
{
    cuDyn *= k;
    cuStatic *= k;
    nocDyn *= k;
    nocStatic *= k;
    hbmDyn *= k;
    hbmStatic *= k;
    cpu *= k;
    sys *= k;
    extMemDyn *= k;
    extMemStatic *= k;
    serdesDyn *= k;
    serdesStatic *= k;
    return *this;
}

PowerBreakdown
NodePowerModel::evaluate(const NodeConfig &cfg, const Activity &act) const
{
    cfg.validate();

    // The whole evaluation lives in power_terms::evaluatePower so the
    // batch path (core/eval_batch.cc) runs the identical operation
    // sequence; the VF scales and the static terms are precomputed
    // here exactly as the batch path's term caches would.
    power_terms::VfScales vf =
        power_terms::vfScales(vf_, cfg.freqGhz, cfg.opts.ntc);
    double hbm_static =
        power_terms::hbmStaticW(cfg.bwTbs, cfg.gpuChiplets);
    power_terms::ExtStatic ext_static = power_terms::extStaticW(cfg.ext);
    return power_terms::evaluatePower(cfg.cus, cfg.freqGhz, cfg.opts,
                                      cfg.ext, act, vf, hbm_static,
                                      ext_static);
}

} // namespace ena

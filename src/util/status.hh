/**
 * @file
 * Errors as values for ena-sim: ena::Status and ena::Expected<T>.
 *
 * The original code reported every user error through fatal(), which
 * std::exit()s the process — acceptable for a CLI, lethal for a
 * thousand-point DSE sweep where one malformed grid point should be
 * quarantined, not kill hours of work. This header is the error
 * substrate that makes failures recoverable:
 *
 *  - Status: an error code plus a human-readable message with
 *    chainable context ("loading node config: config key 'ehp.cus'
 *    (cfg.ini:12): 'abc' is not an integer").
 *  - Expected<T>: a value or a non-ok Status.
 *  - ENA_TRY / ENA_ASSIGN_OR_RETURN: early-return plumbing so try*
 *    functions compose without pyramid-of-doom checks.
 *  - StatusError: the exception bridge for code running under the
 *    ThreadPool, whose join barrier propagates task failures; sweeps
 *    catch it per grid point and quarantine the config.
 *
 * Conversion pattern used across the repo: the recoverable entry point
 * is try*() returning Status/Expected, and the legacy fatal() flavor
 * is a thin wrapper (unwrapOrFatal / checkOrFatal) kept for CLI
 * compatibility. New subsystems should expose the try*() form first.
 */

#ifndef ENA_UTIL_STATUS_HH
#define ENA_UTIL_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace ena {

/** Broad error categories, coarse on purpose (gRPC-style). */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,    ///< caller passed a nonsensical value
    NotFound,           ///< missing key / file / name
    OutOfRange,         ///< value parsed but outside the legal range
    ParseError,         ///< malformed text (config lines, numbers)
    IoError,            ///< unreadable / unwritable file
    FailedPrecondition, ///< operation invalid in the current state
    Internal,           ///< invariant violation inside the simulator
};

/** Stable display name ("invalid_argument", ...). */
inline const char *
errorCodeName(ErrorCode c)
{
    switch (c) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid_argument";
      case ErrorCode::NotFound: return "not_found";
      case ErrorCode::OutOfRange: return "out_of_range";
      case ErrorCode::ParseError: return "parse_error";
      case ErrorCode::IoError: return "io_error";
      case ErrorCode::FailedPrecondition: return "failed_precondition";
      case ErrorCode::Internal: return "internal";
    }
    return "unknown";
}

/**
 * The result of an operation that can fail: Ok, or a code plus a
 * message. Cheap to move; an Ok status allocates nothing.
 */
class Status
{
  public:
    /** Ok. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    template <typename... Args>
    static Status
    invalidArgument(Args &&...args)
    {
        return Status(ErrorCode::InvalidArgument,
                      detail::formatMsg(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    notFound(Args &&...args)
    {
        return Status(ErrorCode::NotFound,
                      detail::formatMsg(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    outOfRange(Args &&...args)
    {
        return Status(ErrorCode::OutOfRange,
                      detail::formatMsg(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    parseError(Args &&...args)
    {
        return Status(ErrorCode::ParseError,
                      detail::formatMsg(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    ioError(Args &&...args)
    {
        return Status(ErrorCode::IoError,
                      detail::formatMsg(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    failedPrecondition(Args &&...args)
    {
        return Status(ErrorCode::FailedPrecondition,
                      detail::formatMsg(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    internal(Args &&...args)
    {
        return Status(ErrorCode::Internal,
                      detail::formatMsg(std::forward<Args>(args)...));
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /**
     * Prepend a context frame: s.withContext("loading ", path) turns
     * "bad key 'x'" into "loading cfg.ini: bad key 'x'". No-op on Ok.
     * The code is preserved, so callers can still dispatch on it after
     * several layers of chaining.
     */
    template <typename... Args>
    Status
    withContext(Args &&...args) const
    {
        if (ok())
            return *this;
        // Build "<context>: <message>" with one allocation instead of
        // the two temporaries operator+ chains would create — context
        // frames stack up several layers deep on sweep error paths.
        std::string out = detail::formatMsg(std::forward<Args>(args)...);
        out.reserve(out.size() + 2 + message_.size());
        out += ": ";
        out += message_;
        return Status(code_, std::move(out));
    }

    /** "[parse_error] config line 3: missing '='" (or "[ok]"). */
    std::string
    toString() const
    {
        std::string s = "[";
        s += errorCodeName(code_);
        s += "]";
        if (!message_.empty()) {
            s += " ";
            s += message_;
        }
        return s;
    }

    bool
    operator==(const Status &o) const
    {
        return code_ == o.code_ && message_ == o.message_;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Exception bridge for contexts that must throw (ThreadPool tasks):
 * carries the Status across the join barrier so the sweep layer can
 * quarantine the failing config with its full diagnostic.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

/**
 * A T, or the Status explaining why there is none. The error
 * constructor requires a non-ok Status (constructing from Ok is a
 * programming error and panics).
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}

    Expected(Status status) : status_(std::move(status))
    {
        ENA_ASSERT(!status_.ok(),
                   "Expected constructed from an ok Status");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** The error; a default (ok) Status when a value is present. */
    const Status &status() const { return status_; }

    T &
    value() &
    {
        ENA_ASSERT(ok(), "Expected::value() on error: ",
                   status_.toString());
        return *value_;
    }

    const T &
    value() const &
    {
        ENA_ASSERT(ok(), "Expected::value() on error: ",
                   status_.toString());
        return *value_;
    }

    T &&
    value() &&
    {
        ENA_ASSERT(ok(), "Expected::value() on error: ",
                   status_.toString());
        return std::move(*value_);
    }

    T
    valueOr(T dflt) const
    {
        return ok() ? *value_ : std::move(dflt);
    }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** Chain context onto the error (no-op when a value is present). */
    template <typename... Args>
    Expected<T>
    withContext(Args &&...args) &&
    {
        if (ok())
            return std::move(*this);
        return Expected<T>(
            status_.withContext(std::forward<Args>(args)...));
    }

  private:
    std::optional<T> value_;
    Status status_;
};

/**
 * CLI-compatibility shims: the legacy fatal() entry points are thin
 * wrappers that unwrap the try*() result and exit with the chained
 * diagnostic on error.
 */
template <typename T>
T
unwrapOrFatal(Expected<T> e)
{
    if (!e.ok())
        ENA_FATAL(e.status().message());
    return std::move(e).value();
}

inline void
checkOrFatal(const Status &s)
{
    if (!s.ok())
        ENA_FATAL(s.message());
}

/** Throw the Status as a StatusError unless it is Ok. */
inline void
throwIfError(Status s)
{
    if (!s.ok())
        throw StatusError(std::move(s));
}

#define ENA_STATUS_CONCAT2(a, b) a##b
#define ENA_STATUS_CONCAT(a, b) ENA_STATUS_CONCAT2(a, b)

/** Early-return a non-ok Status from a Status-returning function. */
#define ENA_TRY(expr) \
    do { \
        ::ena::Status ena_try_status_ = (expr); \
        if (!ena_try_status_.ok()) \
            return ena_try_status_; \
    } while (0)

/**
 * Evaluate an Expected<T> expression; on error return its Status, on
 * success bind the value to @p decl:
 *
 *   ENA_ASSIGN_OR_RETURN(double f, cfg.tryGetDouble("ehp.freq_ghz"));
 */
#define ENA_ASSIGN_OR_RETURN(decl, expr) \
    ENA_ASSIGN_OR_RETURN_IMPL( \
        ENA_STATUS_CONCAT(ena_expected_, __LINE__), decl, expr)

#define ENA_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
    auto tmp = (expr); \
    if (!tmp.ok()) \
        return tmp.status(); \
    decl = std::move(tmp).value()

} // namespace ena

#endif // ENA_UTIL_STATUS_HH

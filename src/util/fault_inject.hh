/**
 * @file
 * Deterministic fault injection for the ThreadPool task layer.
 *
 * A FaultPlan decides — purely from (seed, task index, attempt) — which
 * parallelFor indices throw an InjectedFault instead of running. The
 * decision is a hash, not a shared RNG, so the set of faulted tasks is
 * identical at any thread count and across reruns: a fault-injected
 * sweep whose tasks are retried must produce results bit-identical to
 * a fault-free serial run (gated by bench_fault_tolerance).
 *
 * By default a task faults only on its first attempts
 * (attempt < faultsPerTask), so any retry policy with
 * maxAttempts > faultsPerTask absorbs every injected fault; this is
 * the transient-fault model. Permanent failures are modeled at the
 * sweep layer instead (an invalid config throws on every attempt and
 * gets quarantined).
 *
 * Activation: ENA_FAULT_INJECT="rate,seed" in the environment (e.g.
 * "0.05,42"), or setFaultPlan() programmatically. Injection sites
 * guard on one relaxed atomic load when disabled.
 */

#ifndef ENA_UTIL_FAULT_INJECT_HH
#define ENA_UTIL_FAULT_INJECT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/status.hh"

namespace ena {

/** The exception thrown by an injected fault. */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(std::uint64_t task, int attempt)
        : std::runtime_error("injected fault at task " +
                             std::to_string(task) + " attempt " +
                             std::to_string(attempt)),
          task_(task), attempt_(attempt)
    {
    }

    std::uint64_t task() const { return task_; }
    int attempt() const { return attempt_; }

  private:
    std::uint64_t task_;
    int attempt_;
};

/** Which tasks fault, decided deterministically per (seed, task). */
struct FaultPlan
{
    double rate = 0.0;       ///< fraction of tasks that fault, [0, 1]
    std::uint64_t seed = 0;  ///< selects *which* tasks fault
    int faultsPerTask = 1;   ///< attempts < this fault (transient model)

    /** True if task @p task should throw on attempt @p attempt. */
    bool shouldFault(std::uint64_t task, int attempt) const;

    /** Parse "rate,seed" or "rate,seed,faults_per_task". */
    static Expected<FaultPlan> parse(const std::string &text);
};

namespace fault_inject {

namespace detail {
extern std::atomic<bool> enabled_;
} // namespace detail

/** True while a fault plan is active; one relaxed load. */
inline bool
enabled()
{
    return detail::enabled_.load(std::memory_order_relaxed);
}

/**
 * Install @p plan process-wide (rate > 0 enables injection). Call only
 * while no ThreadPool job is in flight — plans are meant to bracket
 * whole sweeps, not change mid-job.
 */
void setFaultPlan(const FaultPlan &plan);

/** Disable injection. */
void clearFaultPlan();

/** The active plan (meaningful only while enabled()). */
FaultPlan currentPlan();

/**
 * Throw InjectedFault if the active plan selects (task, attempt).
 * Bumps the threadpool.faults_injected counter and drops a trace
 * instant so injections are visible in the Chrome timeline.
 */
void maybeInject(std::uint64_t task, int attempt);

/** Total faults injected since process start. */
std::uint64_t faultsInjected();

} // namespace fault_inject
} // namespace ena

#endif // ENA_UTIL_FAULT_INJECT_HH

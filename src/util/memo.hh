/**
 * @file
 * Small helpers for content-addressed memoization of pure evaluation
 * terms (see core/eval_memo.hh and core/eval_batch.cc).
 *
 * Keys are built from the *raw bit patterns* of the inputs a term
 * actually reads, never from rounded or hashed values, so a cache hit
 * is guaranteed to return the exact double the term function would
 * have produced — the bit-identity contract of the batch evaluator
 * rests on exact keys, not probabilistic ones.
 */

#ifndef ENA_UTIL_MEMO_HH
#define ENA_UTIL_MEMO_HH

#include <bit>
#include <cstdint>
#include <vector>

namespace ena {

/** Raw IEEE-754 bit pattern of a double (exact, no rounding). */
inline std::uint64_t
bitsOf(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** SplitMix64 finalizer: cheap, well-distributed 64-bit mixer. */
inline std::uint64_t
memoMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine key words into one hash (order-sensitive). */
inline std::uint64_t
memoHash(std::uint64_t h, std::uint64_t w)
{
    return memoMix(h ^ memoMix(w));
}

/**
 * Exact-keyed open-addressed map from a 64-bit key to one double,
 * sized for per-batch term caches whose key cardinality is the axis
 * cardinality of a sweep (a handful to a few hundred entries).
 *
 * Keys are compared exactly (the hash only picks the probe start), so
 * two distinct inputs can never alias. Single-threaded by design: each
 * batch evaluation owns its term caches, so no locking is needed.
 */
class TermCache
{
  public:
    explicit TermCache(std::size_t initial_slots = 64)
    {
        slots_.resize(roundUpPow2(initial_slots));
    }

    /**
     * Return the cached value for @p key, or compute it with @p fn,
     * remember it, and return it.
     */
    template <typename Fn>
    double
    getOrCompute(std::uint64_t key, Fn &&fn)
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t i = memoMix(key) & mask;
        while (slots_[i].used) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask;
        }
        double v = fn();
        slots_[i] = Slot{key, v, true};
        if (++size_ * 4 >= slots_.size() * 3)
            grow();
        return v;
    }

    std::size_t size() const { return size_; }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        double value = 0.0;
        bool used = false;
    };

    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 16;
        while (p < n)
            p <<= 1;
        return p;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        std::size_t mask = slots_.size() - 1;
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            std::size_t i = memoMix(s.key) & mask;
            while (slots_[i].used)
                i = (i + 1) & mask;
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace ena

#endif // ENA_UTIL_MEMO_HH

#include "util/table.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ENA_ASSERT(!headers_.empty(), "table needs at least one column");
}

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::add(const std::string &cell)
{
    ENA_ASSERT(!rows_.empty(), "add() before row()");
    ENA_ASSERT(rows_.back().size() < headers_.size(),
               "row has more cells than headers");
    rows_.back().push_back(cell);
    return *this;
}

TextTable &
TextTable::add(const char *cell)
{
    return add(std::string(cell));
}

TextTable &
TextTable::add(double v, const char *fmt)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return add(std::string(buf));
}

TextTable &
TextTable::add(int v)
{
    return add(std::to_string(v));
}

TextTable &
TextTable::add(long long v)
{
    return add(std::to_string(v));
}

TextTable &
TextTable::add(size_t v)
{
    return add(std::to_string(v));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << cell;
            if (c + 1 < headers_.size())
                os << std::string(widths[c] - cell.size() + 2, ' ');
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &r : rows_)
        emit_row(r);
}

namespace {

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

void
TextTable::printCsv(std::ostream &os) const
{
    for (size_t c = 0; c < headers_.size(); ++c)
        os << csvEscape(headers_[c]) << (c + 1 < headers_.size() ? "," : "");
    os << "\n";
    for (const auto &r : rows_) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            if (c < r.size())
                os << csvEscape(r[c]);
            if (c + 1 < headers_.size())
                os << ",";
        }
        os << "\n";
    }
}

void
TextTable::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        ENA_FATAL("cannot open '", path, "' for writing");
    printCsv(out);
}

} // namespace ena

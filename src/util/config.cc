#include "util/config.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

Config
Config::fromString(std::string_view text)
{
    Config cfg;
    std::istringstream in{std::string(text)};
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::string t = trim(line);
        if (t.empty())
            continue;
        size_t eq = t.find('=');
        if (eq == std::string::npos)
            ENA_FATAL("config line ", lineno, ": missing '=' in '", t, "'");
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (key.empty())
            ENA_FATAL("config line ", lineno, ": empty key");
        cfg.values_[key] = value;
    }
    return cfg;
}

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ENA_FATAL("cannot open config file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromString(buf.str());
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os.precision(15);
    os << value;
    values_[key] = os.str();
}

void
Config::set(const std::string &key, long long value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, int value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::optional<std::string>
Config::lookup(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        ENA_FATAL("missing config key '", key, "'");
    return *v;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto v = lookup(key);
    return v ? *v : dflt;
}

double
Config::getDouble(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        ENA_FATAL("missing config key '", key, "'");
    auto d = parseDouble(*v);
    if (!d)
        ENA_FATAL("config key '", key, "': '", *v, "' is not a number");
    return *d;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto v = lookup(key);
    if (!v)
        return dflt;
    auto d = parseDouble(*v);
    if (!d)
        ENA_FATAL("config key '", key, "': '", *v, "' is not a number");
    return *d;
}

long long
Config::getInt(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        ENA_FATAL("missing config key '", key, "'");
    auto d = parseInt(*v);
    if (!d)
        ENA_FATAL("config key '", key, "': '", *v, "' is not an integer");
    return *d;
}

long long
Config::getInt(const std::string &key, long long dflt) const
{
    auto v = lookup(key);
    if (!v)
        return dflt;
    auto d = parseInt(*v);
    if (!d)
        ENA_FATAL("config key '", key, "': '", *v, "' is not an integer");
    return *d;
}

bool
Config::getBool(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        ENA_FATAL("missing config key '", key, "'");
    auto b = parseBool(*v);
    if (!b)
        ENA_FATAL("config key '", key, "': '", *v, "' is not a boolean");
    return *b;
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto v = lookup(key);
    if (!v)
        return dflt;
    auto b = parseBool(*v);
    if (!b)
        ENA_FATAL("config key '", key, "': '", *v, "' is not a boolean");
    return *b;
}

std::vector<std::string>
Config::keysWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_) {
        if (startsWith(k, prefix))
            out.push_back(k);
    }
    return out;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values_)
        values_[k] = v;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : values_)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace ena

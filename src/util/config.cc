#include "util/config.hh"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

Expected<Config>
Config::tryFromString(std::string_view text, const std::string &source)
{
    Config cfg;
    std::istringstream in{std::string(text)};
    std::string line;
    int lineno = 0;
    std::set<std::string> warned;
    while (std::getline(in, line)) {
        ++lineno;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::string t = trim(line);
        if (t.empty())
            continue;
        size_t eq = t.find('=');
        if (eq == std::string::npos) {
            return Status::parseError(source, ":", lineno,
                                      ": missing '=' in '", t, "'");
        }
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (key.empty())
            return Status::parseError(source, ":", lineno, ": empty key");
        auto it = cfg.values_.find(key);
        if (it != cfg.values_.end() && warned.insert(key).second) {
            // Duplicates are almost always a typo; keep the legacy
            // last-write-wins behavior but say so (once per key).
            warn(source, ":", lineno, ": duplicate key '", key,
                 "' overrides earlier value from ", it->second.origin);
        }
        cfg.values_[key] = Entry{value, source + ":" +
                                            std::to_string(lineno)};
    }
    return cfg;
}

Expected<Config>
Config::tryFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::ioError("cannot open config file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return tryFromString(buf.str(), path);
}

Config
Config::fromString(std::string_view text)
{
    return unwrapOrFatal(tryFromString(text));
}

Config
Config::fromFile(const std::string &path)
{
    return unwrapOrFatal(tryFromFile(path));
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = Entry{value, ""};
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os.precision(15);
    os << value;
    values_[key] = Entry{os.str(), ""};
}

void
Config::set(const std::string &key, long long value)
{
    values_[key] = Entry{std::to_string(value), ""};
}

void
Config::set(const std::string &key, int value)
{
    values_[key] = Entry{std::to_string(value), ""};
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = Entry{value ? "true" : "false", ""};
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

const Config::Entry *
Config::lookup(const std::string &key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
}

std::string
Config::describeKey(const std::string &key) const
{
    const Entry *e = lookup(key);
    if (e && !e->origin.empty())
        return "'" + key + "' (" + e->origin + ")";
    return "'" + key + "'";
}

std::string
Config::origin(const std::string &key) const
{
    const Entry *e = lookup(key);
    return e ? e->origin : "";
}

Expected<std::string>
Config::tryGetString(const std::string &key) const
{
    const Entry *e = lookup(key);
    if (!e)
        return Status::notFound("missing config key '", key, "'");
    return e->value;
}

Expected<std::string>
Config::tryGetString(const std::string &key,
                     const std::string &dflt) const
{
    const Entry *e = lookup(key);
    return e ? e->value : dflt;
}

Expected<double>
Config::tryGetDouble(const std::string &key) const
{
    const Entry *e = lookup(key);
    if (!e)
        return Status::notFound("missing config key '", key, "'");
    auto d = parseDouble(e->value);
    if (!d) {
        return Status::parseError("config key ", describeKey(key), ": '",
                                  e->value, "' is not a number");
    }
    if (!std::isfinite(*d)) {
        // NaN/inf parse but poison every downstream model; reject.
        return Status::outOfRange("config key ", describeKey(key), ": '",
                                  e->value, "' is not a finite number");
    }
    return *d;
}

Expected<double>
Config::tryGetDouble(const std::string &key, double dflt) const
{
    if (!lookup(key))
        return dflt;
    return tryGetDouble(key);
}

Expected<long long>
Config::tryGetInt(const std::string &key) const
{
    const Entry *e = lookup(key);
    if (!e)
        return Status::notFound("missing config key '", key, "'");
    auto d = parseInt(e->value);
    if (!d) {
        return Status::parseError("config key ", describeKey(key), ": '",
                                  e->value, "' is not an integer");
    }
    return *d;
}

Expected<long long>
Config::tryGetInt(const std::string &key, long long dflt) const
{
    if (!lookup(key))
        return dflt;
    return tryGetInt(key);
}

Expected<bool>
Config::tryGetBool(const std::string &key) const
{
    const Entry *e = lookup(key);
    if (!e)
        return Status::notFound("missing config key '", key, "'");
    auto b = parseBool(e->value);
    if (!b) {
        return Status::parseError("config key ", describeKey(key), ": '",
                                  e->value, "' is not a boolean");
    }
    return *b;
}

Expected<bool>
Config::tryGetBool(const std::string &key, bool dflt) const
{
    if (!lookup(key))
        return dflt;
    return tryGetBool(key);
}

std::string
Config::getString(const std::string &key) const
{
    return unwrapOrFatal(tryGetString(key));
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    return unwrapOrFatal(tryGetString(key, dflt));
}

double
Config::getDouble(const std::string &key) const
{
    return unwrapOrFatal(tryGetDouble(key));
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    return unwrapOrFatal(tryGetDouble(key, dflt));
}

long long
Config::getInt(const std::string &key) const
{
    return unwrapOrFatal(tryGetInt(key));
}

long long
Config::getInt(const std::string &key, long long dflt) const
{
    return unwrapOrFatal(tryGetInt(key, dflt));
}

bool
Config::getBool(const std::string &key) const
{
    return unwrapOrFatal(tryGetBool(key));
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    return unwrapOrFatal(tryGetBool(key, dflt));
}

std::vector<std::string>
Config::keysWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_) {
        if (startsWith(k, prefix))
            out.push_back(k);
    }
    return out;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values_)
        values_[k] = v;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : values_)
        os << k << " = " << v.value << "\n";
    return os.str();
}

} // namespace ena

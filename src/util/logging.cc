#include "util/logging.hh"

#include <cstdio>
#include <iostream>

namespace ena {

namespace {

LogLevel globalLevel = LogLevel::Warn;

} // anonymous namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::cout << "debug: " << msg << std::endl;
}

} // namespace detail
} // namespace ena

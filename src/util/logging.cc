#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "telemetry/telemetry.hh"

namespace ena {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

/**
 * One lock around every sink write: ThreadPool workers and the caller
 * log concurrently, and without it the prefix/message/newline pieces
 * of different lines interleave on the shared streams.
 */
std::mutex &
sinkMutex()
{
    static std::mutex *m = new std::mutex();   // leaked on purpose
    return *m;
}

LogSink &
customSink()
{
    static LogSink *sink = new LogSink();      // leaked on purpose
    return *sink;
}

/**
 * Emit one fully formatted line: exactly one locked write to the
 * custom sink or the default stream, plus an instant event on the
 * telemetry trace when tracing is on (so warnings line up with the
 * spans that produced them in the viewer).
 */
void
emitLine(LogLevel level, const std::string &line, bool to_stderr)
{
    if (telemetry::tracingEnabled())
        telemetry::instant("log", line);
    std::lock_guard<std::mutex> lk(sinkMutex());
    if (customSink()) {
        customSink()(level, line);
        return;
    }
    std::ostream &os = to_stderr ? std::cerr : std::cout;
    os << line << '\n';
    os.flush();
}

} // anonymous namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lk(sinkMutex());
    customSink() = std::move(sink);
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine(LogLevel::Error,
             "fatal: " + msg + "\n  at " + file + ":" +
                 std::to_string(line),
             true);
    // std::exit runs the telemetry atexit flush, so a fatal() under
    // ENA_TRACE/ENA_METRICS still leaves complete output files.
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine(LogLevel::Error,
             "panic: " + msg + "\n  at " + file + ":" +
                 std::to_string(line),
             true);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emitLine(LogLevel::Warn, "warn: " + msg, true);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emitLine(LogLevel::Info, "info: " + msg, false);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        emitLine(LogLevel::Debug, "debug: " + msg, false);
}

} // namespace detail
} // namespace ena

/**
 * @file
 * Unit constants and conversion helpers.
 *
 * Internal conventions used throughout ena-sim:
 *   - time:        seconds (double) for analytic models, Tick (ps) for the
 *                  event-driven simulator
 *   - frequency:   GHz in configuration structs, Hz in raw math
 *   - bandwidth:   GB/s (1e9 bytes/s) in configuration structs
 *   - power:       watts
 *   - energy:      joules (picojoules for per-event accounting)
 *   - capacity:    bytes (with GiB helpers)
 *   - temperature: degrees Celsius
 */

#ifndef ENA_UTIL_UNITS_HH
#define ENA_UTIL_UNITS_HH

#include <cstdint>

namespace ena {
namespace units {

constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;
constexpr double tera = 1e12;
constexpr double peta = 1e15;
constexpr double exa = 1e18;

constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano = 1e-9;
constexpr double pico = 1e-12;

/** Bytes in one binary gibibyte / mebibyte / kibibyte. */
constexpr std::uint64_t kib = 1024ull;
constexpr std::uint64_t mib = 1024ull * kib;
constexpr std::uint64_t gib = 1024ull * mib;

/** Convert GHz to Hz. */
constexpr double ghzToHz(double ghz) { return ghz * giga; }

/** Convert GB/s (decimal) to bytes per second. */
constexpr double gbsToBytesPerSec(double gbs) { return gbs * giga; }

/** Convert picojoules to joules. */
constexpr double pjToJ(double pj) { return pj * pico; }

/** Joules per second at a given event rate with per-event pJ cost. */
constexpr double
powerFromEventRate(double events_per_sec, double pj_per_event)
{
    return events_per_sec * pjToJ(pj_per_event);
}

} // namespace units

/** Simulator time base: one Tick is one picosecond. */
using Tick = std::uint64_t;

constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** Ticks for one clock period at frequency @p ghz. */
constexpr Tick
clockPeriod(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz);
}

/** Convert a tick count to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * units::pico;
}

} // namespace ena

#endif // ENA_UTIL_UNITS_HH

/**
 * @file
 * Small numeric helpers: means, geomean, linspace, clamping, smooth
 * minimum (used by the analytic roofline model), and a simple online
 * summary accumulator.
 */

#ifndef ENA_UTIL_STATS_MATH_HH
#define ENA_UTIL_STATS_MATH_HH

#include <cstddef>
#include <vector>

namespace ena {

/** Arithmetic mean; fatal() on empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; fatal() on empty input or non-positive values. */
double geomean(const std::vector<double> &xs);

/** Sample standard deviation (n-1); zero for fewer than two samples. */
double stdev(const std::vector<double> &xs);

/**
 * The @p p-th percentile (0..100) by linear interpolation between
 * order statistics: rank = p/100 * (n-1). A one-element input returns
 * that element for any p; fatal() on empty input or p outside
 * [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/** @p n evenly spaced points from @p lo to @p hi inclusive (n >= 2). */
std::vector<double> linspace(double lo, double hi, size_t n);

/** Clamp @p v into [lo, hi]. */
double clamp(double v, double lo, double hi);

/**
 * Smooth minimum of two positive rates via a p-norm:
 * smin(a,b) = (a^-p + b^-p)^(-1/p). Larger @p p approaches hard min;
 * p ~ 4..8 gives the rounded roofline knees seen in measured GPU data.
 */
double smoothMin(double a, double b, double p = 6.0);

/** Linear interpolation of y(x) over sorted sample points (clamped). */
double interpolate(const std::vector<double> &xs,
                   const std::vector<double> &ys, double x);

/** Online accumulator for count/mean/min/max/stdev. */
class Summary
{
  public:
    void add(double v);

    size_t count() const { return n_; }
    double mean() const;
    double min() const;
    double max() const;
    double stdev() const;

  private:
    size_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace ena

#endif // ENA_UTIL_STATS_MATH_HH

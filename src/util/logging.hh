/**
 * @file
 * Logging and error-reporting helpers for ena-sim.
 *
 * Follows the gem5 convention: fatal() terminates the process for
 * user-caused errors (bad configuration, invalid arguments), panic()
 * aborts for conditions that indicate a bug in the simulator itself.
 * warn()/inform() report non-fatal conditions.
 */

#ifndef ENA_UTIL_LOGGING_HH
#define ENA_UTIL_LOGGING_HH

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace ena {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Get the current global log level. */
LogLevel logLevel();

/** Set the global log level (affects inform/warn/debug output). */
void setLogLevel(LogLevel level);

/**
 * Receiver of every emitted log line (prefix included, no trailing
 * newline). Invoked under the logger's single sink lock, so calls are
 * serialized even when ThreadPool workers log concurrently.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Replace the default stdout/stderr sink; an empty function restores
 * it. Used by tests and by embedders that redirect simulator output.
 */
void setLogSink(LogSink sink);

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Format a parameter pack into a single string via ostringstream. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Terminate the simulation due to a user error (bad config, bad input).
 * Exits with status 1; does not dump core.
 */
#define ENA_FATAL(...) \
    ::ena::detail::fatalImpl(__FILE__, __LINE__, \
                             ::ena::detail::formatMsg(__VA_ARGS__))

/**
 * Abort due to an internal simulator bug (a condition that should never
 * happen regardless of user input). Calls abort().
 */
#define ENA_PANIC(...) \
    ::ena::detail::panicImpl(__FILE__, __LINE__, \
                             ::ena::detail::formatMsg(__VA_ARGS__))

/** Panic if an invariant does not hold. */
#define ENA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ena::detail::panicImpl(__FILE__, __LINE__, \
                ::ena::detail::formatMsg("assertion '" #cond "' failed: ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

/** Report suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatMsg(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatMsg(std::forward<Args>(args)...));
}

/** Verbose debugging output, only shown at LogLevel::Debug. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::debugImpl(detail::formatMsg(std::forward<Args>(args)...));
}

} // namespace ena

#endif // ENA_UTIL_LOGGING_HH

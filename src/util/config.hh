/**
 * @file
 * A small typed key-value configuration store.
 *
 * Keys are dotted strings ("ehp.cus", "extmem.nvm_fraction"); values are
 * stored as strings and converted on access. Supports parsing from
 * "key = value" text (one per line, '#' comments) so examples and benches
 * can be driven from config files, and merging/overriding for sweeps.
 */

#ifndef ENA_UTIL_CONFIG_HH
#define ENA_UTIL_CONFIG_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ena {

class Config
{
  public:
    Config() = default;

    /** Parse "key = value" lines; fatal() on malformed input. */
    static Config fromString(std::string_view text);

    /** Load from a file; fatal() if unreadable or malformed. */
    static Config fromFile(const std::string &path);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, double value);
    void set(const std::string &key, long long value);
    void set(const std::string &key, int value);
    void set(const std::string &key, bool value);

    /** True if the key exists. */
    bool has(const std::string &key) const;

    /**
     * Typed accessors. The no-default forms call fatal() when the key is
     * missing or unparseable; the defaulted forms return the default when
     * the key is absent but still fatal() on a present-but-bad value.
     */
    std::string getString(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double dflt) const;
    long long getInt(const std::string &key) const;
    long long getInt(const std::string &key, long long dflt) const;
    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool dflt) const;

    /** All keys with the given prefix (e.g. "extmem."). */
    std::vector<std::string> keysWithPrefix(const std::string &prefix) const;

    /** Merge @p other into this config; other's values win. */
    void merge(const Config &other);

    /** Serialize back to "key = value" lines in sorted key order. */
    std::string toString() const;

    size_t size() const { return values_.size(); }

  private:
    std::optional<std::string> lookup(const std::string &key) const;

    std::map<std::string, std::string> values_;
};

} // namespace ena

#endif // ENA_UTIL_CONFIG_HH

/**
 * @file
 * A small typed key-value configuration store.
 *
 * Keys are dotted strings ("ehp.cus", "extmem.nvm_fraction"); values are
 * stored as strings and converted on access. Supports parsing from
 * "key = value" text (one per line, '#' comments) so examples and benches
 * can be driven from config files, and merging/overriding for sweeps.
 *
 * Errors are values: the try* entry points return ena::Status /
 * ena::Expected with precise source:line/key diagnostics, so a sweep
 * can quarantine one bad config instead of dying. The fatal() flavors
 * are thin wrappers over them, kept for CLI compatibility. Parsing
 * tracks each key's origin ("file.ini:12") and warns once per key on
 * duplicates (last occurrence wins); typed numeric accessors reject
 * NaN/inf and trailing garbage ("3.0x").
 */

#ifndef ENA_UTIL_CONFIG_HH
#define ENA_UTIL_CONFIG_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace ena {

class Config
{
  public:
    Config() = default;

    /**
     * Parse "key = value" lines. @p source names the text in
     * diagnostics and key origins (defaults to "<string>").
     */
    static Expected<Config> tryFromString(
        std::string_view text, const std::string &source = "<string>");

    /** Load from a file; IoError if unreadable, ParseError if bad. */
    static Expected<Config> tryFromFile(const std::string &path);

    /** Parse "key = value" lines; fatal() on malformed input. */
    static Config fromString(std::string_view text);

    /** Load from a file; fatal() if unreadable or malformed. */
    static Config fromFile(const std::string &path);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, double value);
    void set(const std::string &key, long long value);
    void set(const std::string &key, int value);
    void set(const std::string &key, bool value);

    /** True if the key exists. */
    bool has(const std::string &key) const;

    /**
     * Typed accessors, recoverable flavor. The no-default forms return
     * NotFound when the key is missing and ParseError/OutOfRange when
     * the value is malformed (non-finite numbers and trailing garbage
     * are malformed); the defaulted forms return the default when the
     * key is absent but still report a present-but-bad value.
     * Diagnostics carry the key and its source:line origin.
     */
    Expected<std::string> tryGetString(const std::string &key) const;
    Expected<std::string> tryGetString(const std::string &key,
                                       const std::string &dflt) const;
    Expected<double> tryGetDouble(const std::string &key) const;
    Expected<double> tryGetDouble(const std::string &key,
                                  double dflt) const;
    Expected<long long> tryGetInt(const std::string &key) const;
    Expected<long long> tryGetInt(const std::string &key,
                                  long long dflt) const;
    Expected<bool> tryGetBool(const std::string &key) const;
    Expected<bool> tryGetBool(const std::string &key, bool dflt) const;

    /**
     * Typed accessors, legacy flavor: thin fatal() wrappers over the
     * try* forms above (same diagnostics, process exit instead of a
     * Status).
     */
    std::string getString(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double dflt) const;
    long long getInt(const std::string &key) const;
    long long getInt(const std::string &key, long long dflt) const;
    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool dflt) const;

    /** All keys with the given prefix (e.g. "extmem."). */
    std::vector<std::string> keysWithPrefix(const std::string &prefix) const;

    /** Merge @p other into this config; other's values win. */
    void merge(const Config &other);

    /** Serialize back to "key = value" lines in sorted key order. */
    std::string toString() const;

    /**
     * Where a key was parsed from ("cfg.ini:12"); empty for keys added
     * via set()/merge or when unknown. Used in diagnostics.
     */
    std::string origin(const std::string &key) const;

    size_t size() const { return values_.size(); }

  private:
    struct Entry
    {
        std::string value;
        std::string origin;   ///< "source:line" when parsed from text
    };

    const Entry *lookup(const std::string &key) const;

    /** "'key'" or "'key' (cfg.ini:12)" for diagnostics. */
    std::string describeKey(const std::string &key) const;

    std::map<std::string, Entry> values_;
};

} // namespace ena

#endif // ENA_UTIL_CONFIG_HH

/**
 * @file
 * Small string helpers shared across ena-sim (trim, split, case fold,
 * numeric parsing with error reporting).
 */

#ifndef ENA_UTIL_STRING_UTILS_HH
#define ENA_UTIL_STRING_UTILS_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ena {

/** Remove leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split @p s on @p delim, trimming each piece; empty pieces kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Parse a double, returning nullopt on malformed input. */
std::optional<double> parseDouble(std::string_view s);

/** Parse a signed 64-bit integer, returning nullopt on malformed input. */
std::optional<long long> parseInt(std::string_view s);

/** Parse a boolean ("true"/"false"/"1"/"0"/"yes"/"no"). */
std::optional<bool> parseBool(std::string_view s);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ena

#endif // ENA_UTIL_STRING_UTILS_HH

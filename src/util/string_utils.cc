#include "util/string_utils.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ena {

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.push_back(trim(s.substr(start)));
            break;
        }
        out.push_back(trim(s.substr(start, pos - start)));
        start = pos + 1;
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<double>
parseDouble(std::string_view s)
{
    std::string t = trim(s);
    if (t.empty())
        return std::nullopt;
    char *end = nullptr;
    double v = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size())
        return std::nullopt;
    return v;
}

std::optional<long long>
parseInt(std::string_view s)
{
    std::string t = trim(s);
    if (t.empty())
        return std::nullopt;
    char *end = nullptr;
    long long v = std::strtoll(t.c_str(), &end, 0);
    if (end != t.c_str() + t.size())
        return std::nullopt;
    return v;
}

std::optional<bool>
parseBool(std::string_view s)
{
    std::string t = toLower(trim(s));
    if (t == "true" || t == "1" || t == "yes" || t == "on")
        return true;
    if (t == "false" || t == "0" || t == "no" || t == "off")
        return false;
    return std::nullopt;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return {};
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace ena

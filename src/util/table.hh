/**
 * @file
 * Text table and CSV emitters used by the benchmark harness to print the
 * paper's tables and figure series.
 *
 * TextTable renders aligned columns for the console; the same rows can be
 * written as CSV for plotting. Numeric cells carry a printf-style format
 * so reproduced tables match the paper's precision.
 */

#ifndef ENA_UTIL_TABLE_HH
#define ENA_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ena {

class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    TextTable &row();

    /** Append a string cell to the current row. */
    TextTable &add(const std::string &cell);
    TextTable &add(const char *cell);

    /** Append a numeric cell formatted with @p fmt (default "%.3g"). */
    TextTable &add(double v, const char *fmt = "%.3g");
    TextTable &add(int v);
    TextTable &add(long long v);
    TextTable &add(size_t v);

    /** Number of data rows so far. */
    size_t numRows() const { return rows_.size(); }

    /** Render with aligned columns, a header rule, and 2-space gutters. */
    void print(std::ostream &os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to a file; fatal() if the file cannot be opened. */
    void writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ena

#endif // ENA_UTIL_TABLE_HH

/**
 * @file
 * Deterministic random-number generation for synthetic workload traces.
 *
 * A thin wrapper over xoshiro256** so traces are reproducible across
 * platforms and standard-library versions (std::mt19937 distributions are
 * not portable across implementations).
 */

#ifndef ENA_UTIL_RNG_HH
#define ENA_UTIL_RNG_HH

#include <cstdint>

namespace ena {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to fill the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Modulo bias is negligible for n << 2^64 (all our uses).
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Geometric-ish burst length with mean @p m (at least 1). */
    std::uint64_t
    burstLength(double m)
    {
        if (m <= 1.0)
            return 1;
        std::uint64_t len = 1;
        double cont = 1.0 - 1.0 / m;
        while (chance(cont) && len < 1024)
            ++len;
        return len;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace ena

#endif // ENA_UTIL_RNG_HH

/**
 * @file
 * A small, deterministic thread pool for the embarrassingly parallel
 * loops in ena-sim: design-space sweeps, per-application studies, and
 * batched simulation runs.
 *
 * Design goals, in order:
 *
 *  1. Bit-identical results regardless of thread count. parallelFor
 *     hands out index ranges from an atomic chunk counter; each worker
 *     writes only into the slot(s) for the indices it claimed, and any
 *     reduction happens afterwards on the caller in index order. There
 *     is no work stealing and no order-dependent accumulation.
 *  2. Graceful single-thread fallback: with one thread (or ENA_THREADS=1)
 *     parallelFor degenerates to a plain serial loop on the caller, so
 *     serial behaviour is the trivially correct reference.
 *  3. Safe nesting: a parallelFor issued from inside a worker task runs
 *     inline (serially) instead of deadlocking the pool, so library
 *     code can parallelize freely without knowing its caller's context.
 *
 *  4. Failure isolation: a throwing task never takes the process (or
 *     the other tasks) down. Every index runs to completion, each
 *     attempt optionally retried under a RetryPolicy with capped
 *     backoff, and the join barrier rethrows the failure of the
 *     *lowest* failing index — deterministic at any thread count.
 *     Deterministic fault injection (ENA_FAULT_INJECT, FaultPlan)
 *     exercises this machinery end-to-end: an injected transient
 *     fault plus a retry must reproduce the fault-free run
 *     bit-identically (gated by bench_fault_tolerance).
 *
 * The process-wide pool (ThreadPool::global()) sizes itself from the
 * ENA_THREADS environment variable, defaulting to the hardware thread
 * count. The caller always participates in the work, so a pool of N
 * threads spawns N-1 workers and a job completes even if no worker
 * ever wakes up (this also keeps gtest death tests, which fork, safe).
 */

#ifndef ENA_UTIL_THREAD_POOL_HH
#define ENA_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ena {

/**
 * How parallelFor handles a throwing task: each index gets up to
 * maxAttempts tries, sleeping an exponentially growing (capped)
 * backoff between them. Retries absorb transient faults — injected or
 * real — without perturbing results, because a retried index still
 * writes only its own slot. The pool default comes from
 * ENA_TASK_RETRIES (attempt count; 1 = no retries).
 */
struct RetryPolicy
{
    int maxAttempts = 1;          ///< total tries per index (>= 1)
    double backoffUs = 0.0;       ///< sleep before the first retry
    double maxBackoffUs = 10000;  ///< cap for the exponential backoff

    /** No retries: first failure is final. */
    static RetryPolicy none() { return {}; }

    /** @p attempts tries with a short capped backoff. */
    static RetryPolicy
    attempts(int attempts)
    {
        RetryPolicy p;
        p.maxAttempts = attempts > 1 ? attempts : 1;
        p.backoffUs = attempts > 1 ? 50.0 : 0.0;
        return p;
    }

    /** ENA_TASK_RETRIES when set to a positive integer, else none(). */
    static RetryPolicy fromEnvironment();
};

class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads participating in a job (workers + caller). */
    int threads() const { return numThreads_; }

    /** Alias of threads() for container-style introspection. */
    int size() const { return numThreads_; }

    /**
     * Indices of the in-flight parallelFor job not yet claimed by any
     * thread; 0 when the pool is idle. A point-in-time snapshot — by
     * the time the caller looks at it the workers may have drained
     * more — surfaced as the telemetry queue-depth signal.
     */
    std::size_t queuedTasks() const;

    /**
     * Total indices executed by parallelFor/parallelMap since
     * construction, counting every path (pooled, serial fallback,
     * nested-inline).
     */
    std::uint64_t tasksExecuted() const
    {
        return tasksExecuted_.load(std::memory_order_relaxed);
    }

    /** parallelFor calls since construction (any execution path). */
    std::uint64_t jobsSubmitted() const
    {
        return jobsSubmitted_.load(std::memory_order_relaxed);
    }

    /**
     * Run fn(i) for every i in [0, n), possibly concurrently. Blocks
     * until every index has been processed. Every index executes even
     * when some fail (failure isolation); each failing attempt is
     * retried per the policy, and once the job drains, the exception
     * of the lowest failing index is rethrown on the caller — the same
     * failure a serial loop would surface first, at any thread count.
     * fn must not assume any particular execution order; results must
     * be written to per-index slots for determinism.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** parallelFor with an explicit per-task retry policy. */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn,
                     const RetryPolicy &retry);

    /**
     * Default retry policy applied by the two-argument parallelFor.
     * Initialized from ENA_TASK_RETRIES; replace only with no job in
     * flight.
     */
    void setRetryPolicy(const RetryPolicy &retry) { retry_ = retry; }
    const RetryPolicy &retryPolicy() const { return retry_; }

    /**
     * Evaluate fn(i) for i in [0, n) and return the results in index
     * order — identical to a serial loop, any thread count.
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>>
    {
        using T = std::decay_t<decltype(fn(std::size_t{0}))>;
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Evaluate fn(i) for i in [0, n) in parallel, then fold the results
     * into @p init with op(acc, value) on the caller in strict index
     * order: acc = op(op(op(init, fn(0)), fn(1)), ...). Because the
     * reduction itself is serial and ordered, the result is
     * bit-identical to a serial loop at any thread count even for
     * non-associative (floating-point) or non-commutative operators.
     */
    template <typename T, typename Fn, typename Op>
    T
    parallelReduce(std::size_t n, T init, Fn &&fn, Op &&op)
    {
        auto values = parallelMap(n, std::forward<Fn>(fn));
        T acc = std::move(init);
        for (auto &v : values)
            acc = op(std::move(acc), std::move(v));
        return acc;
    }

    /**
     * ENA_THREADS when set to a positive integer, otherwise the
     * hardware concurrency (at least 1).
     */
    static int defaultThreads();

    /**
     * The process-wide pool shared by all sweeps and studies.
     * Constructed on first use with defaultThreads() threads and
     * destroyed by an atexit hook, which joins the workers
     * deterministically (sanitizers see a clean shutdown). The
     * destructor detaches instead of joining when that would deadlock
     * or touch threads that do not exist: exits from inside a worker
     * task (fatal() in legacy wrappers) and forked children (gtest
     * death tests) remain safe.
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with an n-thread one (0 = default).
     * For tests and benchmarks comparing serial vs parallel runs; call
     * only from the main thread with no job in flight.
     */
    static void setGlobalThreads(int n);

  private:
    struct Job
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::size_t chunk = 1;
        RetryPolicy retry;
        std::atomic<std::size_t> next{0};
        /** Lowest failing index and its exception; guarded by m_. */
        std::exception_ptr error;
        std::size_t errorIndex = SIZE_MAX;
    };

    void workerLoop(int worker_index);
    void runChunks(Job &job);
    void runTask(Job &job, std::size_t index);

    int numThreads_;
    long ownerPid_;   ///< pid at construction; fork detection in dtor
    RetryPolicy retry_ = RetryPolicy::fromEnvironment();
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> tasksExecuted_{0};
    std::atomic<std::uint64_t> jobsSubmitted_{0};

    std::mutex submitMutex_;        ///< serializes top-level parallelFor
    mutable std::mutex m_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    Job *job_ = nullptr;
    std::uint64_t generation_ = 0;
    int activeWorkers_ = 0;
    bool stop_ = false;
};

/** parallelFor on the process-wide pool. */
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)> &fn);

/** parallelMap on the process-wide pool. */
template <typename Fn>
auto
parallel_map(std::size_t n, Fn &&fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>>
{
    return ThreadPool::global().parallelMap(n, std::forward<Fn>(fn));
}

/** parallelReduce on the process-wide pool. */
template <typename T, typename Fn, typename Op>
T
parallel_reduce(std::size_t n, T init, Fn &&fn, Op &&op)
{
    return ThreadPool::global().parallelReduce(
        n, std::move(init), std::forward<Fn>(fn), std::forward<Op>(op));
}

} // namespace ena

#endif // ENA_UTIL_THREAD_POOL_HH

/**
 * @file
 * Minimal POSIX socket wrapper for the evaluation server: endpoints,
 * RAII sockets, a listener, and buffered line reads. No external
 * dependencies — just enough plumbing for the newline-delimited JSON
 * protocol in src/server/.
 *
 * Errors are values (ena::Status / ena::Expected) per the repo's error
 * substrate: a refused connection or a dropped peer must never take a
 * sweep down. All sends use MSG_NOSIGNAL so a peer that disappears
 * mid-write surfaces as an IoError instead of SIGPIPE.
 *
 * Endpoints are spelled as strings:
 *
 *   unix:/path/to.sock   Unix-domain stream socket (also bare paths
 *                        containing '/' or ending in ".sock")
 *   tcp:host:port        TCP (IPv4); bare integers mean
 *                        tcp:127.0.0.1:port
 */

#ifndef ENA_UTIL_NET_HH
#define ENA_UTIL_NET_HH

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.hh"

namespace ena {

/** Where a server listens / a client connects. */
struct Endpoint
{
    enum class Kind { Unix, Tcp };

    Kind kind = Kind::Unix;
    std::string path;              ///< Unix socket path
    std::string host = "127.0.0.1";
    int port = 0;                  ///< TCP; 0 lets the kernel pick

    /** "unix:/path" or "tcp:host:port" (round-trips through parse). */
    std::string toString() const;

    static Endpoint
    unixPath(std::string p)
    {
        Endpoint e;
        e.kind = Kind::Unix;
        e.path = std::move(p);
        return e;
    }

    static Endpoint
    tcp(std::string host, int port)
    {
        Endpoint e;
        e.kind = Kind::Tcp;
        e.host = std::move(host);
        e.port = port;
        return e;
    }
};

/** Parse the endpoint grammar above. */
Expected<Endpoint> tryParseEndpoint(const std::string &text);

/**
 * A connected (or accepted) stream socket. Move-only; closes its file
 * descriptor on destruction. A default-constructed Socket is invalid.
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket &
    operator=(Socket &&o) noexcept
    {
        if (this != &o) {
            close();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Write all of @p data (handles short writes); IoError on failure. */
    Status sendAll(std::string_view data);

    /**
     * Read one '\n'-terminated line (newline stripped) using @p buffer
     * as carry-over between calls. Returns false on orderly EOF with no
     * buffered partial line; IoError on failure or timeout.
     */
    Expected<bool> recvLine(std::string *buffer, std::string *line);

    /**
     * Bound every subsequent recv on this socket; 0 restores blocking
     * reads. A lapsed timeout surfaces as IoError("...timed out...").
     */
    Status setRecvTimeout(double seconds);

    /**
     * Wake any thread blocked in recv/send on this socket (they see
     * EOF/EPIPE). Safe to call from another thread; does not close the
     * descriptor.
     */
    void shutdownBoth();

    void close();

  private:
    int fd_ = -1;
};

/** Connect to @p ep (blocking). */
Expected<Socket> connectTo(const Endpoint &ep);

/**
 * A listening socket bound to an endpoint. For Unix endpoints a stale
 * socket file left by a dead server is detected (connect() probe) and
 * removed; the file is unlinked again on destruction. For TCP, port 0
 * binds an ephemeral port and endpoint() reports the resolved one.
 *
 * Shutdown discipline: close() only *shuts down* the socket — it wakes
 * any thread blocked in accept() without releasing the descriptor, so
 * a racing accept can never touch a recycled fd. The descriptor is
 * released by the destructor, after the accept loop has been joined.
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(Listener &&) noexcept;
    Listener &operator=(Listener &&) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    static Expected<Listener> listenOn(const Endpoint &ep);

    /**
     * Accept one connection. Blocks; FailedPrecondition once the
     * listener has been closed (the accept loop's exit signal).
     */
    Expected<Socket> accept();

    /** The bound endpoint (TCP port resolved when 0 was requested). */
    const Endpoint &endpoint() const { return endpoint_; }

    bool valid() const { return fd_ >= 0 && !closed_.load(); }

    /** Thread-safe and idempotent: unblocks a concurrent accept()
     *  without releasing the descriptor (see class comment). */
    void close();

  private:
    void release();

    int fd_ = -1;
    std::atomic<bool> closed_{false};
    Endpoint endpoint_;
};

} // namespace ena

#endif // ENA_UTIL_NET_HH

#include "util/net.hh"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "util/string_utils.hh"

namespace ena {

namespace {

Status
errnoStatus(const char *what)
{
    return Status::ioError(what, ": ", std::strerror(errno));
}

/** Fill a sockaddr_un; OutOfRange when the path exceeds sun_path. */
Expected<sockaddr_un>
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty())
        return Status::invalidArgument("empty Unix socket path");
    if (path.size() >= sizeof(addr.sun_path)) {
        return Status::outOfRange("Unix socket path too long (",
                                  path.size(), " bytes, max ",
                                  sizeof(addr.sun_path) - 1, "): ", path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

Expected<sockaddr_in>
tcpAddr(const std::string &host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (port < 0 || port > 65535)
        return Status::outOfRange("bad TCP port ", port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status::invalidArgument("bad IPv4 address '", host,
                                       "' (hostnames not supported)");
    }
    return addr;
}

} // anonymous namespace

std::string
Endpoint::toString() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return strformat("tcp:%s:%d", host.c_str(), port);
}

Expected<Endpoint>
tryParseEndpoint(const std::string &text)
{
    std::string s = trim(text);
    if (s.empty())
        return Status::invalidArgument("empty endpoint");

    if (startsWith(s, "unix:"))
        return Endpoint::unixPath(s.substr(5));

    if (startsWith(s, "tcp:")) {
        std::string rest = s.substr(4);
        std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos) {
            return Status::parseError(
                "bad TCP endpoint '", s, "' (want tcp:host:port)");
        }
        std::optional<long long> port =
            parseInt(rest.substr(colon + 1));
        if (!port || *port < 0 || *port > 65535) {
            return Status::parseError("bad TCP port in endpoint '", s,
                                      "'");
        }
        std::string host = rest.substr(0, colon);
        return Endpoint::tcp(host.empty() ? "127.0.0.1" : host,
                             static_cast<int>(*port));
    }

    // Bare integer: a local TCP port. Anything path-like: Unix.
    if (std::optional<long long> port = parseInt(s);
        port && *port >= 0 && *port <= 65535) {
        return Endpoint::tcp("127.0.0.1", static_cast<int>(*port));
    }
    return Endpoint::unixPath(s);
}

Status
Socket::sendAll(std::string_view data)
{
    if (!valid())
        return Status::failedPrecondition("send on closed socket");
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("send");
        }
        off += static_cast<std::size_t>(n);
    }
    return Status();
}

Expected<bool>
Socket::recvLine(std::string *buffer, std::string *line)
{
    if (!valid())
        return Status::failedPrecondition("recv on closed socket");
    for (;;) {
        std::size_t nl = buffer->find('\n');
        if (nl != std::string::npos) {
            line->assign(*buffer, 0, nl);
            buffer->erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return Status::ioError("recv timed out");
            return errnoStatus("recv");
        }
        if (n == 0) {
            // Orderly EOF. A partial trailing line is a peer that died
            // mid-write; report it rather than silently dropping bytes.
            if (!buffer->empty()) {
                return Status::ioError(
                    "connection closed mid-line (", buffer->size(),
                    " bytes pending)");
            }
            return false;
        }
        buffer->append(chunk, static_cast<std::size_t>(n));
    }
}

Status
Socket::setRecvTimeout(double seconds)
{
    if (!valid())
        return Status::failedPrecondition("timeout on closed socket");
    timeval tv{};
    if (seconds > 0.0) {
        tv.tv_sec = static_cast<time_t>(seconds);
        tv.tv_usec = static_cast<suseconds_t>(
            (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    }
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
        return errnoStatus("setsockopt(SO_RCVTIMEO)");
    return Status();
}

void
Socket::shutdownBoth()
{
    if (valid())
        ::shutdown(fd_, SHUT_RDWR);
}

void
Socket::close()
{
    if (valid()) {
        ::close(fd_);
        fd_ = -1;
    }
}

Expected<Socket>
connectTo(const Endpoint &ep)
{
    if (ep.kind == Endpoint::Kind::Unix) {
        ENA_ASSIGN_OR_RETURN(sockaddr_un addr, unixAddr(ep.path));
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return errnoStatus("socket");
        Socket s(fd);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            return errnoStatus("connect").withContext("connecting to ",
                                                      ep.toString());
        }
        return s;
    }

    ENA_ASSIGN_OR_RETURN(sockaddr_in addr, tcpAddr(ep.host, ep.port));
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket");
    Socket s(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        return errnoStatus("connect").withContext("connecting to ",
                                                  ep.toString());
    }
    return s;
}

Listener::~Listener()
{
    release();
}

Listener::Listener(Listener &&o) noexcept
    : fd_(o.fd_), closed_(o.closed_.load()),
      endpoint_(std::move(o.endpoint_))
{
    o.fd_ = -1;
}

Listener &
Listener::operator=(Listener &&o) noexcept
{
    if (this != &o) {
        release();
        fd_ = o.fd_;
        closed_.store(o.closed_.load());
        endpoint_ = std::move(o.endpoint_);
        o.fd_ = -1;
    }
    return *this;
}

Expected<Listener>
Listener::listenOn(const Endpoint &ep)
{
    Listener l;
    l.endpoint_ = ep;

    if (ep.kind == Endpoint::Kind::Unix) {
        ENA_ASSIGN_OR_RETURN(sockaddr_un addr, unixAddr(ep.path));
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return errnoStatus("socket");
        l.fd_ = fd;
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            if (errno != EADDRINUSE) {
                return errnoStatus("bind").withContext("listening on ",
                                                       ep.toString());
            }
            // A socket file exists. Probe it: if nobody answers, it is
            // stale debris from a dead server — remove and rebind. If
            // a live server answers, refuse to hijack the address.
            if (connectTo(ep).ok()) {
                return Status::failedPrecondition(
                    "a server is already listening on ",
                    ep.toString());
            }
            ::unlink(ep.path.c_str());
            if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr) != 0) {
                return errnoStatus("bind").withContext(
                    "listening on ", ep.toString());
            }
        }
    } else {
        ENA_ASSIGN_OR_RETURN(sockaddr_in addr,
                             tcpAddr(ep.host, ep.port));
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return errnoStatus("socket");
        l.fd_ = fd;
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            return errnoStatus("bind").withContext("listening on ",
                                                   ep.toString());
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0) {
            l.endpoint_.port = ntohs(bound.sin_port);
        }
    }

    if (::listen(l.fd_, 64) != 0)
        return errnoStatus("listen").withContext("on ", ep.toString());
    return l;
}

Expected<Socket>
Listener::accept()
{
    // fd_ stays valid for the Listener's whole lifetime; close() only
    // shuts the socket down, so this read races with nothing.
    int fd = fd_;
    if (fd < 0 || closed_.load())
        return Status::failedPrecondition("listener closed");
    for (;;) {
        int conn = ::accept(fd, nullptr, nullptr);
        if (conn >= 0) {
            if (closed_.load()) {
                ::close(conn);
                return Status::failedPrecondition("listener closed");
            }
            if (endpoint_.kind == Endpoint::Kind::Tcp) {
                int one = 1;
                ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof one);
            }
            return Socket(conn);
        }
        if (errno == EINTR && !closed_.load())
            continue;
        return Status::failedPrecondition("listener closed (",
                                          std::strerror(errno), ")");
    }
}

void
Listener::close()
{
    // shutdown() wakes a thread blocked in accept(); close() alone
    // does not on Linux. The fd itself is released in release() once
    // no other thread can be using it.
    if (fd_ >= 0 && !closed_.exchange(true))
        ::shutdown(fd_, SHUT_RDWR);
}

void
Listener::release()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (endpoint_.kind == Endpoint::Kind::Unix)
            ::unlink(endpoint_.path.c_str());
    }
}

} // namespace ena

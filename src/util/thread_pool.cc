#include "util/thread_pool.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/fault_inject.hh"
#include "util/logging.hh"

namespace ena {

namespace {

telemetry::Counter &
busyUsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "threadpool.busy_us",
        "microseconds all threads spent executing parallelFor chunks");
    return c;
}

telemetry::Counter &
retriedCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "threadpool.tasks_retried",
        "task attempts repeated after a failure under the retry policy");
    return c;
}

/**
 * Set while the current thread is executing chunks of a job (worker or
 * participating caller): a nested parallelFor from such a thread runs
 * inline instead of re-entering the pool.
 */
thread_local bool in_task = false;

std::mutex global_pool_mutex;
ThreadPool *global_pool = nullptr;

/**
 * atexit hook: join the workers before process teardown so shutdown is
 * deterministic (no threads outliving static destructors). Safe even
 * when the exit originates inside a worker task or a forked child —
 * the destructor detects both and detaches instead of joining.
 */
void
destroyGlobalPool()
{
    std::lock_guard<std::mutex> lk(global_pool_mutex);
    delete global_pool;
    global_pool = nullptr;
}

} // anonymous namespace

RetryPolicy
RetryPolicy::fromEnvironment()
{
    if (const char *env = std::getenv("ENA_TASK_RETRIES")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return RetryPolicy::attempts(
                static_cast<int>(std::min<long>(v, 100)));
        warn("ignoring invalid ENA_TASK_RETRIES='", env,
             "' (want a positive attempt count)");
    }
    return RetryPolicy::none();
}

ThreadPool::ThreadPool(int threads)
    : numThreads_(threads > 0 ? threads : defaultThreads()),
      ownerPid_(static_cast<long>(::getpid()))
{
    workers_.reserve(numThreads_ - 1);
    for (int i = 0; i < numThreads_ - 1; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    telemetry::gauge("threadpool.threads",
                     "threads participating in pool jobs (incl. caller)")
        .set(numThreads_);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    workCv_.notify_all();
    // In a forked child the worker threads only exist in the parent;
    // joining their std::thread handles would deadlock. Detach the
    // handles and let the child exit caller-only (gtest death tests).
    const bool forked = static_cast<long>(::getpid()) != ownerPid_;
    for (std::thread &t : workers_) {
        if (!t.joinable())
            continue;
        if (forked || t.get_id() == std::this_thread::get_id())
            t.detach();   // self-join guard: exit from inside a worker
        else
            t.join();
    }
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("ENA_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<int>(std::min<long>(v, 1024));
        warn("ignoring invalid ENA_THREADS='", env,
             "' (want a positive integer)");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(global_pool_mutex);
    if (!global_pool) {
        global_pool = new ThreadPool();
        // Registered once: the hook reads the current pointer, so
        // setGlobalThreads replacements are covered too. Joining at
        // exit (rather than leaking) keeps worker shutdown
        // deterministic now that worker tasks report failures as
        // values/exceptions instead of exiting mid-task.
        static bool registered = false;
        if (!registered) {
            std::atexit(destroyGlobalPool);
            registered = true;
        }
    }
    return *global_pool;
}

void
ThreadPool::setGlobalThreads(int n)
{
    std::lock_guard<std::mutex> lk(global_pool_mutex);
    delete global_pool;
    global_pool = new ThreadPool(n);
}

std::size_t
ThreadPool::queuedTasks() const
{
    std::lock_guard<std::mutex> lk(m_);
    if (!job_)
        return 0;
    std::size_t next = job_->next.load(std::memory_order_relaxed);
    return next >= job_->n ? 0 : job_->n - next;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    parallelFor(n, fn, retry_);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn,
                        const RetryPolicy &retry)
{
    if (n == 0)
        return;
    jobsSubmitted_.fetch_add(1, std::memory_order_relaxed);
    if (numThreads_ <= 1 || n == 1 || in_task) {
        // Serial/nested fallback: same per-index retry and
        // lowest-failing-index propagation as the pooled path, so the
        // failure surfaced is identical at any thread count.
        ENA_SPAN("threadpool", "parallel_for_inline");
        Job job;
        job.fn = &fn;
        job.n = n;
        job.retry = retry;
        for (std::size_t i = 0; i < n; ++i)
            runTask(job, i);
        tasksExecuted_.fetch_add(n, std::memory_order_relaxed);
        if (job.error)
            std::rethrow_exception(job.error);
        return;
    }

    // One top-level job at a time per pool.
    std::lock_guard<std::mutex> submit(submitMutex_);

    ENA_SPAN("threadpool", "parallel_for");
    telemetry::traceCounter("threadpool", "queued_tasks",
                            static_cast<double>(n));

    Job job;
    job.fn = &fn;
    job.n = n;
    job.retry = retry;
    job.chunk = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(numThreads_) * 4));

    {
        std::lock_guard<std::mutex> lk(m_);
        job_ = &job;
        ++generation_;
    }
    workCv_.notify_all();

    // The caller works too, so the job drains even with no workers
    // (single-thread pools, forked children).
    in_task = true;
    runChunks(job);
    in_task = false;

    {
        std::unique_lock<std::mutex> lk(m_);
        doneCv_.wait(lk, [&] { return activeWorkers_ == 0; });
        job_ = nullptr;
    }
    telemetry::traceCounter("threadpool", "queued_tasks", 0.0);
    if (job.error)
        std::rethrow_exception(job.error);
}

/**
 * One index, with fault injection, retries, and failure capture. Every
 * index runs regardless of other indices' failures; the job records
 * only the lowest failing index, which the join barrier rethrows.
 */
void
ThreadPool::runTask(Job &job, std::size_t index)
{
    for (int attempt = 0;; ++attempt) {
        try {
            if (fault_inject::enabled())
                fault_inject::maybeInject(index, attempt);
            (*job.fn)(index);
            return;
        } catch (...) {
            if (attempt + 1 < job.retry.maxAttempts) {
                retriedCounter().add();
                double sleep_us = std::min(
                    job.retry.backoffUs *
                        static_cast<double>(1ull << std::min(attempt, 30)),
                    job.retry.maxBackoffUs);
                if (sleep_us > 0.0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::micro>(
                            sleep_us));
                }
                continue;
            }
            // Attempts exhausted: keep the failure of the lowest index
            // (ties impossible — one owner per index).
            std::lock_guard<std::mutex> lk(m_);
            if (index < job.errorIndex) {
                job.errorIndex = index;
                job.error = std::current_exception();
            }
            return;
        }
    }
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        std::size_t begin =
            job.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (begin >= job.n)
            return;
        std::size_t end = std::min(begin + job.chunk, job.n);
        // Per-chunk telemetry: a span on this thread's trace track and
        // the pool-wide busy-time counter. Both are write-only and
        // gated on the enable flags, so the chunk claiming order and
        // per-index results are untouched.
        telemetry::ScopedSpan chunk_span("threadpool", "chunk");
        const bool timed = telemetry::metricsEnabled();
        const double t0 = timed ? telemetry::nowUs() : 0.0;
        for (std::size_t i = begin; i < end; ++i)
            runTask(job, i);
        tasksExecuted_.fetch_add(end - begin,
                                 std::memory_order_relaxed);
        if (timed) {
            busyUsCounter().add(static_cast<std::uint64_t>(
                telemetry::nowUs() - t0));
        }
    }
}

void
ThreadPool::workerLoop(int worker_index)
{
    telemetry::setThreadName("ena-worker-" +
                             std::to_string(worker_index));
    std::uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(m_);
            workCv_.wait(lk, [&] {
                return stop_ || (job_ && generation_ != seen);
            });
            if (stop_)
                return;
            job = job_;
            seen = generation_;
            ++activeWorkers_;
        }
        in_task = true;
        runChunks(*job);
        in_task = false;
        {
            std::lock_guard<std::mutex> lk(m_);
            --activeWorkers_;
        }
        doneCv_.notify_all();
    }
}

void
parallel_for(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    ThreadPool::global().parallelFor(n, fn);
}

} // namespace ena

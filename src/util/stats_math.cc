#include "util/stats_math.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ena {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        ENA_FATAL("mean of empty vector");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        ENA_FATAL("geomean of empty vector");
    double s = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            ENA_FATAL("geomean requires positive values, got ", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
stdev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        ENA_FATAL("percentile of empty vector");
    if (p < 0.0 || p > 100.0)
        ENA_FATAL("percentile needs p in [0, 100], got ", p);
    std::sort(xs.begin(), xs.end());
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    if (lo + 1 >= xs.size())
        return xs.back();
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

std::vector<double>
linspace(double lo, double hi, size_t n)
{
    ENA_ASSERT(n >= 2, "linspace needs n >= 2");
    std::vector<double> out(n);
    double step = (hi - lo) / static_cast<double>(n - 1);
    for (size_t i = 0; i < n; ++i)
        out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;
    return out;
}

double
clamp(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

double
smoothMin(double a, double b, double p)
{
    ENA_ASSERT(a > 0.0 && b > 0.0, "smoothMin needs positive rates");
    ENA_ASSERT(p > 0.0, "smoothMin needs positive norm");
    return std::pow(std::pow(a, -p) + std::pow(b, -p), -1.0 / p);
}

double
interpolate(const std::vector<double> &xs, const std::vector<double> &ys,
            double x)
{
    ENA_ASSERT(xs.size() == ys.size() && !xs.empty(),
               "interpolate needs matching non-empty vectors");
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    auto it = std::upper_bound(xs.begin(), xs.end(), x);
    size_t i = static_cast<size_t>(it - xs.begin());
    double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
    return ys[i - 1] + t * (ys[i] - ys[i - 1]);
}

void
Summary::add(double v)
{
    if (n_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    sum_ += v;
    sumSq_ += v * v;
}

double
Summary::mean() const
{
    if (n_ == 0)
        ENA_FATAL("Summary::mean with no samples");
    return sum_ / static_cast<double>(n_);
}

double
Summary::min() const
{
    if (n_ == 0)
        ENA_FATAL("Summary::min with no samples");
    return min_;
}

double
Summary::max() const
{
    if (n_ == 0)
        ENA_FATAL("Summary::max with no samples");
    return max_;
}

double
Summary::stdev() const
{
    if (n_ < 2)
        return 0.0;
    double m = sum_ / static_cast<double>(n_);
    double var = (sumSq_ - static_cast<double>(n_) * m * m) /
                 static_cast<double>(n_ - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

} // namespace ena

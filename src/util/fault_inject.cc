#include "util/fault_inject.hh"

#include <cmath>
#include <cstdlib>
#include <mutex>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

namespace {

std::mutex plan_mutex;
FaultPlan active_plan;

telemetry::Counter &
injectedCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "threadpool.faults_injected",
        "task attempts aborted by the fault-injection plan");
    return c;
}

/** splitmix64: a well-mixed 64-bit hash of (seed, task). */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t task)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (task + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Apply ENA_FAULT_INJECT at static-initialization time, mirroring the
 * telemetry subsystem's env activation: any binary that links the pool
 * honors the variable without an explicit enable call.
 */
struct EnvInit
{
    EnvInit()
    {
        const char *env = std::getenv("ENA_FAULT_INJECT");
        if (!env || !*env)
            return;
        Expected<FaultPlan> plan = FaultPlan::parse(env);
        if (!plan.ok()) {
            warn("ignoring ENA_FAULT_INJECT: ",
                 plan.status().message());
            return;
        }
        fault_inject::setFaultPlan(*plan);
    }
};

EnvInit env_init;

} // anonymous namespace

bool
FaultPlan::shouldFault(std::uint64_t task, int attempt) const
{
    if (rate <= 0.0 || attempt >= faultsPerTask)
        return false;
    // Map the hash onto [0, 1) and compare against the rate; the
    // decision depends only on (seed, task), never on timing or the
    // executing thread.
    double u = static_cast<double>(mix(seed, task) >> 11) /
               static_cast<double>(1ull << 53);
    return u < rate;
}

Expected<FaultPlan>
FaultPlan::parse(const std::string &text)
{
    std::vector<std::string> parts = split(text, ',');
    if (parts.size() < 2 || parts.size() > 3)
        return Status::parseError(
            "fault plan '", text, "': want rate,seed[,faults_per_task]");
    std::optional<double> rate = parseDouble(parts[0]);
    if (!rate || !std::isfinite(*rate) || *rate < 0.0 || *rate > 1.0)
        return Status::parseError("fault plan rate '", parts[0],
                                  "': want a number in [0, 1]");
    std::optional<long long> seed = parseInt(parts[1]);
    if (!seed || *seed < 0)
        return Status::parseError("fault plan seed '", parts[1],
                                  "': want a non-negative integer");
    FaultPlan p;
    p.rate = *rate;
    p.seed = static_cast<std::uint64_t>(*seed);
    if (parts.size() == 3) {
        std::optional<long long> fpt = parseInt(parts[2]);
        if (!fpt || *fpt < 1)
            return Status::parseError("fault plan faults_per_task '",
                                      parts[2],
                                      "': want a positive integer");
        p.faultsPerTask = static_cast<int>(*fpt);
    }
    return p;
}

namespace fault_inject {

namespace detail {
std::atomic<bool> enabled_{false};
} // namespace detail

void
setFaultPlan(const FaultPlan &plan)
{
    {
        std::lock_guard<std::mutex> lk(plan_mutex);
        active_plan = plan;
    }
    detail::enabled_.store(plan.rate > 0.0, std::memory_order_relaxed);
}

void
clearFaultPlan()
{
    detail::enabled_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(plan_mutex);
    active_plan = FaultPlan{};
}

FaultPlan
currentPlan()
{
    std::lock_guard<std::mutex> lk(plan_mutex);
    return active_plan;
}

void
maybeInject(std::uint64_t task, int attempt)
{
    FaultPlan plan;
    {
        std::lock_guard<std::mutex> lk(plan_mutex);
        plan = active_plan;
    }
    if (!plan.shouldFault(task, attempt))
        return;
    injectedCounter().add();
    if (telemetry::tracingEnabled()) {
        telemetry::instant("fault", "inject:task=" +
                                        std::to_string(task));
    }
    throw InjectedFault(task, attempt);
}

std::uint64_t
faultsInjected()
{
    return injectedCounter().value();
}

} // namespace fault_inject
} // namespace ena

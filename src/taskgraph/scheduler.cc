#include "taskgraph/scheduler.hh"

#include <algorithm>
#include <numeric>

#include "core/eval_memo.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

namespace {

telemetry::Counter &
tasksScheduledCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "taskgraph.tasks_scheduled",
        "DAG tasks placed onto nodes by scheduleDag");
    return c;
}

telemetry::Counter &
edgesCostedCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "taskgraph.edges_costed",
        "cross-node DAG edges charged a transfer cost");
    return c;
}

telemetry::Histogram &
scheduleLatencyHistogram()
{
    static telemetry::Histogram &h = telemetry::histogram(
        "taskgraph.schedule_us", "scheduleDag latency (us)");
    return h;
}

} // anonymous namespace

std::string
dagSchedulerName(DagScheduler s)
{
    switch (s) {
      case DagScheduler::CriticalPath:
        return "critical-path";
      case DagScheduler::MinMin:
        return "min-min";
      case DagScheduler::RoundRobin:
        return "round-robin";
    }
    ENA_FATAL("unknown DagScheduler ", static_cast<int>(s));
}

Expected<DagScheduler>
tryDagSchedulerFromName(const std::string &name)
{
    std::string n = toLower(name);
    for (DagScheduler s : allDagSchedulers()) {
        if (n == dagSchedulerName(s))
            return s;
    }
    if (n == "cp" || n == "heft" || n == "critical_path")
        return DagScheduler::CriticalPath;
    if (n == "minmin" || n == "min_min")
        return DagScheduler::MinMin;
    if (n == "rr" || n == "round_robin")
        return DagScheduler::RoundRobin;
    return Status::invalidArgument(
        "unknown scheduler '", name,
        "' (want critical-path, min-min, or round-robin)");
}

const std::vector<DagScheduler> &
allDagSchedulers()
{
    static const std::vector<DagScheduler> all = {
        DagScheduler::CriticalPath,
        DagScheduler::MinMin,
        DagScheduler::RoundRobin,
    };
    return all;
}

double
DagCostModel::totalTaskSeconds() const
{
    double sum = 0.0;
    for (double s : taskSeconds)
        sum += s;
    return sum;
}

DagCostModel
DagCostModel::build(const TaskDag &dag, const NodeEvaluator &eval,
                    const NodeConfig &cfg, const InterNodeNetwork &net,
                    EvalMemoCache *memo)
{
    ENA_SPAN("taskgraph", "DagCostModel::build");
    DagCostModel cost;
    cost.edgeBandwidthBps = net.deliveredGbs(CommPattern::Halo) * 1e9;
    cost.edgeLatencySeconds = net.latencyUs(net.avgHops()) * 1e-6;

    // One evaluator call per distinct app, not per task (a 10k-task
    // wavefront is still one profile).
    const std::size_t napps = allApps().size();
    std::vector<double> flopsPerApp(napps, 0.0);
    std::vector<bool> known(napps, false);
    cost.taskSeconds.resize(dag.size());
    for (const DagTask &t : dag.tasks()) {
        const std::size_t a = static_cast<std::size_t>(t.app);
        ENA_ASSERT(a < napps, "bad App ", a, " on task ", t.id);
        if (!known[a]) {
            EvalResult r = memo ? eval.evaluateMemo(cfg, t.app, *memo)
                                : eval.evaluate(cfg, t.app);
            flopsPerApp[a] = r.perf.flops;
            known[a] = true;
        }
        cost.taskSeconds[t.id] = t.flops / flopsPerApp[a];
    }
    return cost;
}

double
criticalPathSeconds(const TaskDag &dag, const DagCostModel &cost)
{
    ENA_ASSERT(cost.taskSeconds.size() == dag.size(),
               "cost model sized for ", cost.taskSeconds.size(),
               " tasks, DAG has ", dag.size());
    std::vector<double> cp(dag.size(), 0.0);
    double best = 0.0;
    for (const DagTask &t : dag.tasks()) {
        double ready = 0.0;
        for (const DagEdge &d : t.deps)
            ready = std::max(ready, cp[d.task] + cost.edgeSeconds(d.bytes));
        cp[t.id] = ready + cost.taskSeconds[t.id];
        best = std::max(best, cp[t.id]);
    }
    return best;
}

namespace {

/**
 * Shared placement machinery: given the order tasks are considered in
 * and a node-choice rule, fill in the placements. All three policies
 * are instances of this loop.
 */
struct Placer
{
    const TaskDag &dag;
    const DagCostModel &cost;
    Schedule &out;
    /** Earliest instant each node is idle again. */
    std::vector<double> freeAt;

    Placer(const TaskDag &d, const DagCostModel &c, Schedule &o,
           std::size_t machine_slots)
        : dag(d), cost(c), out(o), freeAt(machine_slots, 0.0)
    {
    }

    /** When task @p t's inputs have all landed on node @p n. */
    double
    readyOn(const DagTask &t, int n) const
    {
        double ready = 0.0;
        for (const DagEdge &d : t.deps) {
            double arrive = out.placements[d.task].finishSeconds;
            if (out.placements[d.task].node != n)
                arrive += cost.edgeSeconds(d.bytes);
            ready = std::max(ready, arrive);
        }
        return ready;
    }

    /** Earliest finish time of @p t on node @p n. */
    double
    eftOn(const DagTask &t, int n) const
    {
        return std::max(freeAt[static_cast<std::size_t>(n)], readyOn(t, n)) +
               cost.taskSeconds[t.id];
    }

    /** Min-EFT node for @p t; ties break to the lowest node index. */
    int
    bestNode(const DagTask &t) const
    {
        int best = 0;
        double best_eft = eftOn(t, 0);
        for (int n = 1; n < static_cast<int>(freeAt.size()); ++n) {
            const double eft = eftOn(t, n);
            if (eft < best_eft) {
                best = n;
                best_eft = eft;
            }
        }
        return best;
    }

    /** Commit task @p t to node @p n and account its comm edges. */
    void
    place(const DagTask &t, int n)
    {
        const double start =
            std::max(freeAt[static_cast<std::size_t>(n)], readyOn(t, n));
        const double finish = start + cost.taskSeconds[t.id];
        out.placements[t.id] = {n, start, finish};
        freeAt[static_cast<std::size_t>(n)] = finish;
        out.makespanSeconds = std::max(out.makespanSeconds, finish);
        for (const DagEdge &d : t.deps) {
            // A zero-byte edge is free everywhere (edgeSeconds == 0.0
            // exactly) and is never charged — the zero-comm reduction
            // gate requires edgesCosted == 0, not just zero seconds.
            if (d.bytes == 0.0 || out.placements[d.task].node == n)
                continue;
            out.totalCommSeconds += cost.edgeSeconds(d.bytes);
            ++out.edgesCosted;
        }
    }
};

/**
 * HEFT upward rank: task time plus the heaviest downstream chain,
 * counting every edge as a cross-node transfer.
 */
std::vector<double>
upwardRanks(const TaskDag &dag, const DagCostModel &cost)
{
    std::vector<double> rank(dag.size(), 0.0);
    // Successors always have larger ids (topological insertion), so a
    // reverse id scan visits them first.
    for (std::size_t i = dag.size(); i-- > 0;) {
        const TaskId id = static_cast<TaskId>(i);
        double chain = 0.0;
        for (const DagEdge &e : dag.succs(id))
            chain = std::max(chain, cost.edgeSeconds(e.bytes) + rank[e.task]);
        rank[i] = cost.taskSeconds[i] + chain;
    }
    return rank;
}

void
scheduleCriticalPath(const TaskDag &dag, const DagCostModel &cost,
                     Placer &placer)
{
    const std::vector<double> rank = upwardRanks(dag, cost);
    std::vector<TaskId> order(dag.size());
    std::iota(order.begin(), order.end(), TaskId{0});
    // Descending rank; stable keeps equal-rank tasks in id order, so
    // predecessors (lower id, rank >= successor's) always come first.
    std::stable_sort(order.begin(), order.end(),
                     [&rank](TaskId a, TaskId b) {
                         return rank[a] > rank[b];
                     });
    for (TaskId id : order) {
        const DagTask &t = dag.task(id);
        placer.place(t, placer.bestNode(t));
    }
}

void
scheduleMinMin(const TaskDag &dag, Placer &placer)
{
    std::vector<int> pending(dag.size(), 0);
    for (const DagTask &t : dag.tasks())
        pending[t.id] = static_cast<int>(t.deps.size());
    std::vector<TaskId> ready;
    for (const DagTask &t : dag.tasks()) {
        if (pending[t.id] == 0)
            ready.push_back(t.id);
    }
    while (!ready.empty()) {
        // The ready task whose best finish time is smallest; ties break
        // to the lowest id (ready is maintained in ascending id order).
        std::size_t pick = 0;
        int pick_node = 0;
        double pick_eft = 0.0;
        for (std::size_t i = 0; i < ready.size(); ++i) {
            const DagTask &t = dag.task(ready[i]);
            const int n = placer.bestNode(t);
            const double eft = placer.eftOn(t, n);
            if (i == 0 || eft < pick_eft) {
                pick = i;
                pick_node = n;
                pick_eft = eft;
            }
        }
        const TaskId id = ready[pick];
        placer.place(dag.task(id), pick_node);
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
        std::vector<TaskId> unlocked;
        for (const DagEdge &e : dag.succs(id)) {
            if (--pending[e.task] == 0)
                unlocked.push_back(e.task);
        }
        // Keep the ready list sorted by id so ties stay deterministic.
        std::sort(unlocked.begin(), unlocked.end());
        for (TaskId u : unlocked) {
            ready.insert(std::lower_bound(ready.begin(), ready.end(), u),
                         u);
        }
    }
}

void
scheduleRoundRobin(const TaskDag &dag, int nodes, Placer &placer)
{
    for (const DagTask &t : dag.tasks())
        placer.place(t, static_cast<int>(t.id % static_cast<TaskId>(nodes)));
}

} // anonymous namespace

Schedule
scheduleDag(const TaskDag &dag, const DagCostModel &cost,
            DagScheduler policy, int nodes)
{
    ENA_ASSERT(nodes > 0, "cannot schedule onto ", nodes, " nodes");
    ENA_ASSERT(cost.taskSeconds.size() == dag.size(),
               "cost model sized for ", cost.taskSeconds.size(),
               " tasks, DAG has ", dag.size());
    ENA_SPAN("taskgraph", "scheduleDag");
    const double t0 = telemetry::nowUs();

    Schedule s;
    s.scheduler = policy;
    s.nodes = nodes;
    s.placements.resize(dag.size());
    s.totalCompSeconds = cost.totalTaskSeconds();

    // Min-EFT placement never touches more nodes than there are tasks
    // (an idle node is always at least as good as a busy one), and
    // round-robin wraps below the same bound, so the machine can be
    // modeled with min(nodes, tasks) slots: identical placements, no
    // 100k-entry scan per task.
    const std::size_t slots =
        std::min<std::size_t>(static_cast<std::size_t>(nodes), dag.size());
    Placer placer(dag, cost, s, slots);

    switch (policy) {
      case DagScheduler::CriticalPath:
        scheduleCriticalPath(dag, cost, placer);
        break;
      case DagScheduler::MinMin:
        scheduleMinMin(dag, placer);
        break;
      case DagScheduler::RoundRobin:
        scheduleRoundRobin(dag, nodes, placer);
        break;
    }

    tasksScheduledCounter().add(dag.size());
    edgesCostedCounter().add(s.edgesCosted);
    scheduleLatencyHistogram().sample(telemetry::nowUs() - t0);
    return s;
}

} // namespace ena

#include "taskgraph/resilient_schedule.hh"

#include <algorithm>
#include <vector>

#include "core/eval_memo.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace ena {

ResilientDagScheduler::ResilientDagScheduler(const NodeEvaluator &eval,
                                             ResilienceSpec spec,
                                             double failover_seconds)
    : eval_(eval), spec_(spec), fm_(spec.ras),
      failoverSeconds_(failover_seconds)
{
    spec_.validate();
    ENA_ASSERT(failover_seconds >= 0.0, "negative failover cost ",
               failover_seconds);
}

ResilientSchedule
ResilientDagScheduler::evaluate(const TaskDag &dag, const NodeConfig &cfg,
                                const InterNodeNetwork &net,
                                DagScheduler policy, int nodes,
                                int spare_nodes,
                                EvalMemoCache *memo) const
{
    ENA_ASSERT(spare_nodes >= 0, "negative spare pool ", spare_nodes);
    ENA_SPAN("taskgraph", "ResilientDagScheduler::evaluate");

    DagCostModel cost = DagCostModel::build(dag, eval_, cfg, net, memo);

    ResilientSchedule r;
    r.spareNodes = spare_nodes;

    // 1. RMT steals GPU throughput for redundant execution: inflate
    // each task by its app's slowdown. Off multiplies by exactly 1.0
    // (RmtOutcome default), and the Off branch is skipped entirely, so
    // the fault-free cost model is bitwise untouched.
    if (spec_.rmtPolicy != RmtPolicy::Off) {
        const std::size_t napps = allApps().size();
        std::vector<double> slowdown(napps, 1.0);
        std::vector<bool> known(napps, false);
        for (const DagTask &t : dag.tasks()) {
            const std::size_t a = static_cast<std::size_t>(t.app);
            if (!known[a]) {
                EvalResult er = memo
                                    ? eval_.evaluateMemo(cfg, t.app, *memo)
                                    : eval_.evaluate(cfg, t.app);
                slowdown[a] =
                    rmt_.evaluate(er.perf.activity, spec_.rmtPolicy)
                        .slowdown;
                known[a] = true;
                r.rmtSlowdown = std::max(r.rmtSlowdown, slowdown[a]);
            }
            cost.taskSeconds[t.id] *= slowdown[a];
        }
    }

    r.schedule = scheduleDag(dag, cost, policy, nodes);

    // Distinct nodes the placements actually touch (the slot bound in
    // scheduleDag keeps indices < min(nodes, tasks)).
    std::vector<bool> touched(
        std::min<std::size_t>(static_cast<std::size_t>(nodes), dag.size()),
        false);
    for (const TaskPlacement &p : r.schedule.placements) {
        if (!touched[static_cast<std::size_t>(p.node)]) {
            touched[static_cast<std::size_t>(p.node)] = true;
            ++r.usedNodes;
        }
    }

    if (!spec_.faultsEnabled) {
        // Ideal never-failing machine: the exact reduction. No terms
        // are added or scaled, so effective == makespan bitwise.
        r.nodeMttfHours = 0.0;
        r.effectiveMakespanSeconds = r.schedule.makespanSeconds;
        return r;
    }

    // 2. Node failures interrupt the run. Expected count over the
    // schedule: node-hours of exposure / per-node MTTF.
    r.nodeMttfHours = fm_.nodeMttfHours(cfg);
    const double makespanHours = r.schedule.makespanSeconds / 3600.0;
    r.expectedFailures = r.nodeMttfHours > 0.0
                             ? static_cast<double>(r.usedNodes) *
                                   makespanHours / r.nodeMttfHours
                             : 0.0;
    r.coveredFailures =
        std::min(r.expectedFailures, static_cast<double>(spare_nodes));

    // Each failure pays a spare takeover plus re-execution of the
    // interrupted task (half a mean task of lost work, in expectation).
    const double meanTask =
        dag.size() > 0
            ? cost.totalTaskSeconds() / static_cast<double>(dag.size())
            : 0.0;
    r.reexecSeconds =
        r.expectedFailures * (failoverSeconds_ + 0.5 * meanTask);

    // 3. Failures beyond the spare pool shrink the machine: the
    // surviving nodes carry the dead nodes' share of the work.
    const double uncovered = r.expectedFailures - r.coveredFailures;
    if (uncovered > 0.0 && r.usedNodes > 0) {
        const double lost = std::min(
            uncovered, static_cast<double>(r.usedNodes) - 1.0);
        r.stretchFactor = static_cast<double>(r.usedNodes) /
                          (static_cast<double>(r.usedNodes) - lost);
    }

    r.effectiveMakespanSeconds =
        r.schedule.makespanSeconds * r.stretchFactor + r.reexecSeconds;
    return r;
}

} // namespace ena

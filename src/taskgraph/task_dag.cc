#include "taskgraph/task_dag.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

std::string
dagShapeName(DagShape s)
{
    switch (s) {
      case DagShape::Wavefront:
        return "wavefront";
      case DagShape::StencilHalo:
        return "stencil-halo";
      case DagShape::ForkJoin:
        return "fork-join";
      case DagShape::ReductionTree:
        return "reduction-tree";
      case DagShape::RandomLayered:
        return "random-layered";
    }
    ENA_FATAL("unknown DagShape ", static_cast<int>(s));
}

Expected<DagShape>
tryDagShapeFromName(const std::string &name)
{
    std::string n = toLower(name);
    for (DagShape s : allDagShapes()) {
        if (n == dagShapeName(s))
            return s;
    }
    if (n == "sweep")
        return DagShape::Wavefront;
    if (n == "stencil" || n == "halo")
        return DagShape::StencilHalo;
    if (n == "forkjoin" || n == "fork_join")
        return DagShape::ForkJoin;
    if (n == "reduction" || n == "tree")
        return DagShape::ReductionTree;
    if (n == "random" || n == "random_layered")
        return DagShape::RandomLayered;
    return Status::invalidArgument(
        "unknown DAG shape '", name,
        "' (want wavefront, stencil-halo, fork-join, reduction-tree, "
        "or random-layered)");
}

const std::vector<DagShape> &
allDagShapes()
{
    static const std::vector<DagShape> all = {
        DagShape::Wavefront,     DagShape::StencilHalo,
        DagShape::ForkJoin,      DagShape::ReductionTree,
        DagShape::RandomLayered,
    };
    return all;
}

TaskId
TaskDag::addTask(double flops, App app, std::vector<DagEdge> deps)
{
    DagTask t;
    t.id = static_cast<TaskId>(tasks_.size());
    t.flops = flops;
    t.app = app;
    for (const DagEdge &d : deps) {
        ENA_ASSERT(d.task < t.id, "dependency ", d.task,
                   " does not precede task ", t.id,
                   " (insert in topological order)");
        t.layer = std::max(t.layer, tasks_[d.task].layer + 1);
        succs_[d.task].push_back({t.id, d.bytes});
    }
    edges_ += deps.size();
    t.deps = std::move(deps);
    tasks_.push_back(std::move(t));
    succs_.emplace_back();
    return tasks_.back().id;
}

const DagTask &
TaskDag::task(TaskId id) const
{
    ENA_ASSERT(id < tasks_.size(), "bad task id ", id);
    return tasks_[id];
}

const std::vector<DagEdge> &
TaskDag::succs(TaskId id) const
{
    ENA_ASSERT(id < succs_.size(), "bad task id ", id);
    return succs_[id];
}

double
TaskDag::totalFlops() const
{
    double sum = 0.0;
    for (const DagTask &t : tasks_)
        sum += t.flops;
    return sum;
}

double
TaskDag::totalEdgeBytes() const
{
    double sum = 0.0;
    for (const DagTask &t : tasks_) {
        for (const DagEdge &d : t.deps)
            sum += d.bytes;
    }
    return sum;
}

int
TaskDag::depth() const
{
    int deepest = -1;
    for (const DagTask &t : tasks_)
        deepest = std::max(deepest, t.layer);
    return deepest + 1;
}

std::size_t
TaskDag::maxLayerWidth() const
{
    std::vector<std::size_t> widths(static_cast<std::size_t>(depth()), 0);
    for (const DagTask &t : tasks_)
        ++widths[static_cast<std::size_t>(t.layer)];
    std::size_t widest = 0;
    for (std::size_t w : widths)
        widest = std::max(widest, w);
    return widest;
}

Status
TaskDag::tryValidate() const
{
    if (tasks_.empty())
        return Status::failedPrecondition("TaskDag '", name_,
                                          "': empty task graph");
    for (const DagTask &t : tasks_) {
        if (!(t.flops > 0.0) || !std::isfinite(t.flops)) {
            return Status::outOfRange("TaskDag '", name_, "': task ",
                                      t.id, " has bad flops ", t.flops);
        }
        for (const DagEdge &d : t.deps) {
            if (d.bytes < 0.0 || !std::isfinite(d.bytes)) {
                return Status::outOfRange(
                    "TaskDag '", name_, "': edge ", d.task, " -> ", t.id,
                    " has bad byte count ", d.bytes);
            }
        }
    }
    return Status();
}

std::string
TaskDag::label() const
{
    return strformat("%s (%zu tasks, %zu edges)", name_.c_str(),
                     tasks_.size(), edges_);
}

TaskDag
TaskDag::wavefront(int n, double task_flops, double edge_bytes, App app)
{
    ENA_ASSERT(n > 0, "wavefront needs a positive grid size, got ", n);
    TaskDag dag(strformat("wavefront n=%d", n));
    std::vector<TaskId> grid(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            std::vector<DagEdge> deps;
            if (i > 0)
                deps.push_back({grid[(i - 1) * n + j], edge_bytes});
            if (j > 0)
                deps.push_back({grid[i * n + (j - 1)], edge_bytes});
            grid[i * n + j] =
                dag.addTask(task_flops, app, std::move(deps));
        }
    }
    return dag;
}

TaskDag
TaskDag::stencilHalo(int ranks, int steps, double task_flops,
                     double edge_bytes, App app)
{
    ENA_ASSERT(ranks > 0 && steps > 0,
               "stencil needs positive ranks and steps, got ", ranks,
               " x ", steps);
    TaskDag dag(strformat("stencil-halo %dx%d", ranks, steps));
    std::vector<TaskId> prev(ranks), cur(ranks);
    for (int s = 0; s < steps; ++s) {
        for (int r = 0; r < ranks; ++r) {
            std::vector<DagEdge> deps;
            if (s > 0) {
                // A rank's next step needs its own state plus the halo
                // surfaces of both neighbors.
                deps.push_back({prev[r], edge_bytes});
                if (r > 0)
                    deps.push_back({prev[r - 1], edge_bytes});
                if (r + 1 < ranks)
                    deps.push_back({prev[r + 1], edge_bytes});
            }
            cur[r] = dag.addTask(task_flops, app, std::move(deps));
        }
        std::swap(prev, cur);
    }
    return dag;
}

TaskDag
TaskDag::forkJoin(int width, int stages, double task_flops,
                  double edge_bytes, App app)
{
    ENA_ASSERT(width > 0 && stages > 0,
               "fork-join needs positive width and stages, got ", width,
               " x ", stages);
    TaskDag dag(strformat("fork-join %dx%d", width, stages));
    TaskId join = dag.addTask(task_flops, app);
    for (int s = 0; s < stages; ++s) {
        std::vector<TaskId> stage(width);
        for (int w = 0; w < width; ++w)
            stage[w] = dag.addTask(task_flops, app, {{join, edge_bytes}});
        std::vector<DagEdge> deps;
        for (TaskId t : stage)
            deps.push_back({t, edge_bytes});
        join = dag.addTask(task_flops, app, std::move(deps));
    }
    return dag;
}

TaskDag
TaskDag::reductionTree(int leaves, int fanin, double task_flops,
                       double edge_bytes, App app)
{
    ENA_ASSERT(leaves > 0, "reduction needs positive leaves, got ",
               leaves);
    ENA_ASSERT(fanin > 1, "reduction needs fan-in > 1, got ", fanin);
    TaskDag dag(strformat("reduction-tree %d/%d", leaves, fanin));
    std::vector<TaskId> level(leaves);
    for (int l = 0; l < leaves; ++l)
        level[l] = dag.addTask(task_flops, app);
    while (level.size() > 1) {
        std::vector<TaskId> next;
        for (std::size_t lo = 0; lo < level.size();
             lo += static_cast<std::size_t>(fanin)) {
            std::vector<DagEdge> deps;
            const std::size_t hi = std::min(
                level.size(), lo + static_cast<std::size_t>(fanin));
            for (std::size_t i = lo; i < hi; ++i)
                deps.push_back({level[i], edge_bytes});
            next.push_back(dag.addTask(task_flops, app, std::move(deps)));
        }
        level = std::move(next);
    }
    return dag;
}

namespace {

/** SplitMix64 of (seed, src, dst): the edge-existence coin flip. */
double
edgeHash(std::uint64_t seed, std::uint64_t src, std::uint64_t dst)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (src * 2654435761ull +
                                                      dst + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

} // anonymous namespace

TaskDag
TaskDag::randomLayered(int layers, int width, double edge_prob,
                       std::uint64_t seed, double task_flops,
                       double edge_bytes, App app)
{
    ENA_ASSERT(layers > 0 && width > 0,
               "random-layered needs positive layers and width, got ",
               layers, " x ", width);
    ENA_ASSERT(edge_prob >= 0.0 && edge_prob <= 1.0,
               "edge probability must be in [0, 1], got ", edge_prob);
    TaskDag dag(strformat("random-layered %dx%d p=%.2f seed=%llu",
                          layers, width, edge_prob,
                          static_cast<unsigned long long>(seed)));
    std::vector<TaskId> prev(width), cur(width);
    for (int l = 0; l < layers; ++l) {
        for (int w = 0; w < width; ++w) {
            std::vector<DagEdge> deps;
            if (l > 0) {
                const std::uint64_t dst =
                    static_cast<std::uint64_t>(l) * width + w;
                for (int p = 0; p < width; ++p) {
                    if (edgeHash(seed, prev[p], dst) < edge_prob)
                        deps.push_back({prev[p], edge_bytes});
                }
                // No spurious roots: every non-entry task keeps at
                // least its same-column predecessor.
                if (deps.empty())
                    deps.push_back({prev[w], edge_bytes});
            }
            cur[w] = dag.addTask(task_flops, app, std::move(deps));
        }
        std::swap(prev, cur);
    }
    return dag;
}

} // namespace ena

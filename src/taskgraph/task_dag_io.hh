/**
 * @file
 * Config-file bindings for the task-graph layer, mirroring
 * cluster_config_io.hh: the workload is described under the
 * "taskgraph." prefix so one file can hold the full scenario (ehp.* /
 * extmem.* for the node, cluster.* for the fabric, taskgraph.* for the
 * DAG) and be loaded by each layer's reader.
 *
 * Recognized keys (all optional; defaults = TaskGraphSpec{}):
 *
 *   taskgraph.shape  (wavefront | stencil-halo | fork-join |
 *                     reduction-tree | random-layered)
 *   taskgraph.app            kernel profile naming memory behaviour
 *   taskgraph.size           grid n / ranks / width / leaves
 *   taskgraph.depth          steps / stages / layers
 *   taskgraph.task_gflops    work per task (1e9 flops)
 *   taskgraph.edge_mb        bytes per edge (1e6 bytes)
 *   taskgraph.edge_prob      random-layered edge probability
 *   taskgraph.seed           random-layered seed
 *   taskgraph.fanin          reduction-tree fan-in
 *
 * Unknown "taskgraph." keys are rejected to catch typos; keys outside
 * the prefix are ignored (they belong to the node/cluster layers).
 *
 * tryTaskGraphSpecFromConfig is the recoverable entry point (errors
 * carry the offending key and its source:line origin);
 * taskGraphSpecFromConfig is the legacy fatal() wrapper.
 */

#ifndef ENA_TASKGRAPH_TASK_DAG_IO_HH
#define ENA_TASKGRAPH_TASK_DAG_IO_HH

#include <cmath>
#include <cstdint>

#include "taskgraph/task_dag.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace ena {

/**
 * A generator recipe for a TaskDag: which shape, how big, and how much
 * work/communication each task and edge carries. This is the form the
 * config file, the explorer CLI, and the server's taskgraph_eval op all
 * share; build() turns it into the concrete DAG.
 */
struct TaskGraphSpec
{
    DagShape shape = DagShape::Wavefront;
    App app = App::MaxFlops;
    int size = 16;             ///< grid n / ranks / width / leaves
    int depth = 8;             ///< steps / stages / layers
    double taskGflops = 64.0;  ///< work per task, in Gflops
    double edgeMb = 16.0;      ///< bytes per edge, in MB
    double edgeProb = 0.35;    ///< random-layered edge probability
    std::uint64_t seed = 1;    ///< random-layered seed
    int fanin = 2;             ///< reduction-tree fan-in

    Status tryValidate() const
    {
        if (size <= 0)
            return Status::outOfRange("taskgraph.size must be positive, got ",
                                      size);
        if (depth <= 0)
            return Status::outOfRange(
                "taskgraph.depth must be positive, got ", depth);
        if (!(taskGflops > 0.0) || !std::isfinite(taskGflops)) {
            return Status::outOfRange(
                "taskgraph.task_gflops must be positive and finite, got ",
                taskGflops);
        }
        if (edgeMb < 0.0 || !std::isfinite(edgeMb)) {
            return Status::outOfRange(
                "taskgraph.edge_mb must be non-negative and finite, got ",
                edgeMb);
        }
        if (!(edgeProb >= 0.0 && edgeProb <= 1.0)) {
            return Status::outOfRange(
                "taskgraph.edge_prob must be in [0, 1], got ", edgeProb);
        }
        if (fanin < 2)
            return Status::outOfRange("taskgraph.fanin must be >= 2, got ",
                                      fanin);
        return Status();
    }

    /** Instantiate the DAG this spec describes. */
    TaskDag build() const
    {
        const double flops = taskGflops * 1e9;
        const double bytes = edgeMb * 1e6;
        switch (shape) {
          case DagShape::Wavefront:
            return TaskDag::wavefront(size, flops, bytes, app);
          case DagShape::StencilHalo:
            return TaskDag::stencilHalo(size, depth, flops, bytes, app);
          case DagShape::ForkJoin:
            return TaskDag::forkJoin(size, depth, flops, bytes, app);
          case DagShape::ReductionTree:
            return TaskDag::reductionTree(size, fanin, flops, bytes, app);
          case DagShape::RandomLayered:
            return TaskDag::randomLayered(depth, size, edgeProb, seed,
                                          flops, bytes, app);
        }
        ENA_FATAL("unknown DagShape ", static_cast<int>(shape));
    }
};

inline Expected<TaskGraphSpec>
tryTaskGraphSpecFromConfig(const Config &cfg)
{
    static const char *known[] = {
        "taskgraph.shape",      "taskgraph.app",
        "taskgraph.size",       "taskgraph.depth",
        "taskgraph.task_gflops", "taskgraph.edge_mb",
        "taskgraph.edge_prob",  "taskgraph.seed",
        "taskgraph.fanin",
    };
    for (const std::string &key : cfg.keysWithPrefix("taskgraph.")) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok) {
            std::string where = cfg.origin(key);
            return Status::invalidArgument(
                "unknown taskgraph-config key '", key, "'",
                where.empty() ? "" : " (" + where + ")");
        }
    }

    TaskGraphSpec s;
    ENA_ASSIGN_OR_RETURN(
        std::string shape,
        cfg.tryGetString("taskgraph.shape", dagShapeName(s.shape)));
    ENA_ASSIGN_OR_RETURN(s.shape, tryDagShapeFromName(shape));
    ENA_ASSIGN_OR_RETURN(std::string app,
                         cfg.tryGetString("taskgraph.app", appName(s.app)));
    ENA_ASSIGN_OR_RETURN(s.app, tryAppFromName(app));
    ENA_ASSIGN_OR_RETURN(long long size,
                         cfg.tryGetInt("taskgraph.size", s.size));
    s.size = static_cast<int>(size);
    ENA_ASSIGN_OR_RETURN(long long depth,
                         cfg.tryGetInt("taskgraph.depth", s.depth));
    s.depth = static_cast<int>(depth);
    ENA_ASSIGN_OR_RETURN(
        s.taskGflops,
        cfg.tryGetDouble("taskgraph.task_gflops", s.taskGflops));
    ENA_ASSIGN_OR_RETURN(s.edgeMb,
                         cfg.tryGetDouble("taskgraph.edge_mb", s.edgeMb));
    ENA_ASSIGN_OR_RETURN(
        s.edgeProb, cfg.tryGetDouble("taskgraph.edge_prob", s.edgeProb));
    ENA_ASSIGN_OR_RETURN(
        long long seed,
        cfg.tryGetInt("taskgraph.seed",
                      static_cast<long long>(s.seed)));
    s.seed = static_cast<std::uint64_t>(seed);
    ENA_ASSIGN_OR_RETURN(long long fanin,
                         cfg.tryGetInt("taskgraph.fanin", s.fanin));
    s.fanin = static_cast<int>(fanin);

    ENA_TRY(s.tryValidate());
    return s;
}

/** Legacy flavor: fatal() with the chained diagnostic on any error. */
inline TaskGraphSpec
taskGraphSpecFromConfig(const Config &cfg)
{
    return unwrapOrFatal(tryTaskGraphSpecFromConfig(cfg).withContext(
        "loading taskgraph config"));
}

/** Serialize a TaskGraphSpec back into a Config ("taskgraph." keys). */
inline Config
taskGraphSpecToConfig(const TaskGraphSpec &s)
{
    Config cfg;
    cfg.set("taskgraph.shape", dagShapeName(s.shape));
    cfg.set("taskgraph.app", appName(s.app));
    cfg.set("taskgraph.size", s.size);
    cfg.set("taskgraph.depth", s.depth);
    cfg.set("taskgraph.task_gflops", s.taskGflops);
    cfg.set("taskgraph.edge_mb", s.edgeMb);
    cfg.set("taskgraph.edge_prob", s.edgeProb);
    cfg.set("taskgraph.seed", static_cast<long long>(s.seed));
    cfg.set("taskgraph.fanin", s.fanin);
    return cfg;
}

} // namespace ena

#endif // ENA_TASKGRAPH_TASK_DAG_IO_HH

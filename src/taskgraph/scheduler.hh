/**
 * @file
 * DAG schedulers: map a TaskDag onto N identical ENA nodes and predict
 * the schedule's makespan. The machine description comes from the
 * layers below — per-task compute time from NodeEvaluator achieved
 * flops, cross-node edge transfer time from InterNodeNetwork delivered
 * bandwidth and per-hop latency — so the schedulers study *placement*,
 * not hardware, on exactly the model the cluster layer already trusts.
 *
 * Three policies:
 *  - critical-path: HEFT-style list scheduling by upward rank (task
 *    time + heaviest downstream chain), each task placed on the node
 *    with the earliest finish time;
 *  - min-min: repeatedly schedule the ready task whose best-node
 *    finish time is smallest (greedy, locally optimal);
 *  - round-robin: tasks dealt to nodes by id — the baseline any real
 *    scheduler must beat.
 *
 * Exact-reduction discipline (the repo's zero-comm gate): when every
 * edge carries zero bytes, edge cost is exactly 0.0, and with at least
 * as many nodes as tasks every scheduler's makespan equals
 * criticalPathSeconds() bit-for-bit (gated by bench_taskgraph).
 *
 * Determinism: all tie-breaks resolve to the lowest task id / lowest
 * node index, priority sorts are stable, and nothing depends on
 * iteration timing, so a schedule is a pure function of
 * (dag, cost model, policy, node count).
 */

#ifndef ENA_TASKGRAPH_SCHEDULER_HH
#define ENA_TASKGRAPH_SCHEDULER_HH

#include <string>
#include <vector>

#include "cluster/internode_network.hh"
#include "common/node_config.hh"
#include "core/node_evaluator.hh"
#include "taskgraph/task_dag.hh"
#include "util/status.hh"

namespace ena {

class EvalMemoCache;

/** The scheduling policies. */
enum class DagScheduler
{
    CriticalPath,  ///< HEFT-style upward-rank list scheduling
    MinMin,        ///< greedy smallest-finish-time-first
    RoundRobin,    ///< node = task id mod N baseline
};

/** Display name ("critical-path", "min-min", "round-robin"). */
std::string dagSchedulerName(DagScheduler s);

/** Parse a scheduler name (case-insensitive). */
Expected<DagScheduler> tryDagSchedulerFromName(const std::string &name);

/** All schedulers, in enum order. */
const std::vector<DagScheduler> &allDagSchedulers();

/**
 * Everything the schedulers need to price a schedule: seconds per task
 * and the cross-node edge cost parameters. Built once per (dag, node
 * config, network) and shared by every policy so comparisons differ
 * only in placement.
 */
struct DagCostModel
{
    /** Execution seconds of task i on one node (flops / achieved). */
    std::vector<double> taskSeconds;

    /** Cross-node edge bandwidth (bytes/s; halo-pattern delivered). */
    double edgeBandwidthBps = 0.0;

    /** Cross-node edge latency (s; average-hop one-way). */
    double edgeLatencySeconds = 0.0;

    /**
     * Seconds to move @p bytes between two distinct nodes. Exactly 0.0
     * for a zero-byte edge — the latency term must not leak into the
     * zero-comm reduction.
     */
    double
    edgeSeconds(double bytes) const
    {
        if (bytes == 0.0)
            return 0.0;
        return bytes / edgeBandwidthBps + edgeLatencySeconds;
    }

    /** Sum of all task seconds: the one-node serial run time. */
    double totalTaskSeconds() const;

    /**
     * Price @p dag on the machine: task time from the evaluator's
     * achieved flops for each task's app on @p cfg, edge parameters
     * from the network's halo-pattern delivered bandwidth and
     * average-hop latency. @p memo (optional) shares node evaluations
     * across cost models bit-identically (evaluateMemo == evaluate).
     */
    static DagCostModel build(const TaskDag &dag,
                              const NodeEvaluator &eval,
                              const NodeConfig &cfg,
                              const InterNodeNetwork &net,
                              EvalMemoCache *memo = nullptr);
};

/** Where and when one task runs. */
struct TaskPlacement
{
    int node = 0;
    double startSeconds = 0.0;
    double finishSeconds = 0.0;
};

/** One policy's complete answer for one DAG on one machine. */
struct Schedule
{
    DagScheduler scheduler = DagScheduler::CriticalPath;
    int nodes = 0;                        ///< machine size scheduled onto
    std::vector<TaskPlacement> placements; ///< indexed by TaskId

    double makespanSeconds = 0.0;
    double totalCompSeconds = 0.0;  ///< sum of task times (work)
    double totalCommSeconds = 0.0;  ///< sum of charged cross-node edges
    std::size_t edgesCosted = 0;    ///< cross-node edges charged

    /** Busy fraction of the machine: work / (nodes x makespan). */
    double
    utilization() const
    {
        const double cap = static_cast<double>(nodes) * makespanSeconds;
        return cap > 0.0 ? totalCompSeconds / cap : 0.0;
    }

    /** Speedup over the one-node serial run. */
    double
    speedup() const
    {
        return makespanSeconds > 0.0 ? totalCompSeconds / makespanSeconds
                                     : 0.0;
    }

    /** Parallel efficiency: speedup / nodes. */
    double
    efficiency() const
    {
        return nodes > 0 ? speedup() / static_cast<double>(nodes) : 0.0;
    }
};

/**
 * The heaviest path through the DAG, counting every edge as a
 * cross-node transfer (a scheduler that co-places a chain can beat it;
 * one that serializes independent tasks falls behind it). With zero
 * edge bytes it is the pure compute critical path — the analytic lower
 * bound — and every scheduler given nodes >= dag.size() must reproduce
 * it bit-identically.
 */
double criticalPathSeconds(const TaskDag &dag, const DagCostModel &cost);

/**
 * Schedule @p dag onto @p nodes identical nodes under @p policy.
 * Deterministic: a pure function of its arguments at any thread count.
 */
Schedule scheduleDag(const TaskDag &dag, const DagCostModel &cost,
                     DagScheduler policy, int nodes);

} // namespace ena

#endif // ENA_TASKGRAPH_SCHEDULER_HH

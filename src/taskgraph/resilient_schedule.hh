/**
 * @file
 * Fault-aware DAG scheduling: what RAS does to a schedule's makespan,
 * the task-graph counterpart of ResilientClusterEvaluator (which
 * degrades steady-state throughput). Reuses the same ResilienceSpec —
 * protection choices feed FaultModel for the per-node MTTF, the RMT
 * policy feeds RmtModel for a per-app execution slowdown — and
 * composes them onto a Schedule as a deterministic expected-value
 * model:
 *
 *   1. RMT inflates each task's execution time by its app's slowdown
 *      (redundant wavefronts steal throughput), lengthening the
 *      schedule the baseline policy produces.
 *   2. Node failures interrupt the run: the expected failure count is
 *      node-hours / MTTF. Each failure costs a spare-node takeover
 *      (failoverSeconds) plus re-execution of the half-done task.
 *   3. Failures beyond the spare pool shrink the machine, stretching
 *      the remaining work by the capacity lost.
 *
 * Exact-reduction discipline: ResilienceSpec::none() multiplies by
 * exactly 1.0 and adds exactly 0.0, so the effective makespan equals
 * the fault-free Schedule bit-for-bit (gated by tests/taskgraph).
 * Expected values keep the model a pure function of its inputs — no
 * RNG — matching the repo's determinism bar.
 */

#ifndef ENA_TASKGRAPH_RESILIENT_SCHEDULE_HH
#define ENA_TASKGRAPH_RESILIENT_SCHEDULE_HH

#include "cluster/resilient_cluster.hh"
#include "ras/fault_model.hh"
#include "ras/rmt.hh"
#include "taskgraph/scheduler.hh"

namespace ena {

/** One DAG scheduled onto a machine that can fail. */
struct ResilientSchedule
{
    Schedule schedule;              ///< RMT-inflated baseline schedule

    double nodeMttfHours = 0.0;     ///< per-node MTTF under the spec
    double rmtSlowdown = 1.0;       ///< worst per-app slowdown applied
    int usedNodes = 0;              ///< distinct nodes the schedule touches
    int spareNodes = 0;             ///< standby pool absorbing failures

    double expectedFailures = 0.0;  ///< node-hours / MTTF over the run
    double coveredFailures = 0.0;   ///< absorbed by the spare pool
    double reexecSeconds = 0.0;     ///< failover + lost-work re-execution
    double stretchFactor = 1.0;     ///< capacity loss beyond the spares

    /** schedule.makespan * stretch + re-execution; == makespan with
     *  faults disabled. */
    double effectiveMakespanSeconds = 0.0;

    /** Effective / fault-free makespan (>= 1). */
    double
    degradation() const
    {
        return schedule.makespanSeconds > 0.0
                   ? effectiveMakespanSeconds / schedule.makespanSeconds
                   : 1.0;
    }
};

class ResilientDagScheduler
{
  public:
    /**
     * @param failover_seconds spare-node takeover cost per failure
     *        (checkpoint restore + requeue; order tens of seconds).
     */
    ResilientDagScheduler(const NodeEvaluator &eval, ResilienceSpec spec,
                          double failover_seconds = 30.0);

    /**
     * Schedule @p dag under @p policy on @p nodes nodes (plus
     * @p spare_nodes standbys) and degrade the makespan by the spec's
     * fault and RMT models. Deterministic at any thread count.
     */
    ResilientSchedule evaluate(const TaskDag &dag, const NodeConfig &cfg,
                               const InterNodeNetwork &net,
                               DagScheduler policy, int nodes,
                               int spare_nodes,
                               EvalMemoCache *memo = nullptr) const;

    const ResilienceSpec &spec() const { return spec_; }
    const FaultModel &faultModel() const { return fm_; }

  private:
    const NodeEvaluator &eval_;
    ResilienceSpec spec_;
    FaultModel fm_;
    RmtModel rmt_;
    double failoverSeconds_;
};

} // namespace ena

#endif // ENA_TASKGRAPH_RESILIENT_SCHEDULE_HH

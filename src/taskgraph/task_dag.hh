/**
 * @file
 * Cluster-level task-graph workloads (paper Section II-A1): the HPC
 * applications that motivate the EHP are really DAGs of dependent
 * kernels — sweeps, AMR, multigrid — not the three static
 * bulk-synchronous patterns CommModel reduces them to. TaskDag is the
 * shared workload description for that layer: an immutable DAG of
 * compute tasks (flops plus a KernelProfile-typed App naming the
 * memory behaviour) connected by communication edges carrying bytes.
 *
 * Tasks are inserted in topological order (dependencies must already
 * exist), which guarantees acyclicity by construction — the same
 * discipline as the cycle-level hsa::TaskGraph, whose wavefront demo
 * now builds its grid through the wavefront() generator here.
 *
 * Generators cover the canonical shapes: wavefront (2D sweep, SNAP),
 * stencil-halo (timestepped domain exchange, CoMD/LULESH), fork-join
 * (bulk-synchronous phases), reduction-tree (dot products, time-step
 * control), and random-layered (irregular AMR-like graphs, seeded and
 * deterministic). A DAG is also loadable from the repo's "key = value"
 * config files under the "taskgraph." prefix (task_dag_io.hh).
 */

#ifndef ENA_TASKGRAPH_TASK_DAG_HH
#define ENA_TASKGRAPH_TASK_DAG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

using TaskId = std::uint32_t;

/** The canned DAG shapes the generators produce. */
enum class DagShape
{
    Wavefront,      ///< 2D sweep: (i,j) waits on (i-1,j) and (i,j-1)
    StencilHalo,    ///< timesteps x ranks with neighbor halo edges
    ForkJoin,       ///< serial fork -> parallel stage -> join phases
    ReductionTree,  ///< leaves folded by a fixed fan-in
    RandomLayered,  ///< seeded random edges between adjacent layers
};

/** Display name ("wavefront", "stencil-halo", ...). */
std::string dagShapeName(DagShape s);

/** Parse a shape name (case-insensitive). */
Expected<DagShape> tryDagShapeFromName(const std::string &name);

/** All generator shapes, in enum order. */
const std::vector<DagShape> &allDagShapes();

/** One edge endpoint: the peer task and the bytes moved on the edge. */
struct DagEdge
{
    TaskId task = 0;
    double bytes = 0.0;
};

/** One node of the DAG. */
struct DagTask
{
    TaskId id = 0;
    double flops = 0.0;       ///< work in this task
    App app = App::MaxFlops;  ///< KernelProfile-typed memory behaviour
    int layer = 0;            ///< topological depth (0 for roots)
    std::vector<DagEdge> deps; ///< predecessors with edge bytes
};

class TaskDag
{
  public:
    explicit TaskDag(std::string name = "dag") : name_(std::move(name)) {}

    /**
     * Add a task. Dependencies must already exist (topological
     * insertion order), which also guarantees acyclicity. The task's
     * layer is 1 + the deepest predecessor layer.
     */
    TaskId addTask(double flops, App app, std::vector<DagEdge> deps = {});

    const std::string &name() const { return name_; }
    std::size_t size() const { return tasks_.size(); }
    std::size_t numEdges() const { return edges_; }

    const DagTask &task(TaskId id) const;
    const std::vector<DagTask> &tasks() const { return tasks_; }

    /** Successor edges of @p id ({successor, bytes}). */
    const std::vector<DagEdge> &succs(TaskId id) const;

    /** Sum of task flops across the DAG. */
    double totalFlops() const;

    /** Sum of edge bytes across the DAG. */
    double totalEdgeBytes() const;

    /** Number of layers (0 for an empty DAG). */
    int depth() const;

    /** Largest per-layer task count (peak generator parallelism). */
    std::size_t maxLayerWidth() const;

    /**
     * Sanity-check the DAG: non-empty, positive finite task flops,
     * non-negative finite edge bytes. The error names the offending
     * task or edge.
     */
    Status tryValidate() const;

    /** Short "wavefront n=24 (576 tasks)" label for tables. */
    std::string label() const;

    // --- generators (all deterministic) ---

    /**
     * A 2D wavefront sweep over an n x n grid: task (i,j) depends on
     * (i-1,j) and (i,j-1), row-major insertion, layer == i + j (the
     * anti-diagonal). This is the SNAP-like grid the HSA example maps
     * onto AQL queues.
     */
    static TaskDag wavefront(int n, double task_flops, double edge_bytes,
                             App app);

    /**
     * @p steps timesteps over @p ranks domain partitions: each step's
     * rank r depends on ranks r-1, r, r+1 of the previous step (halo
     * exchange between neighbors).
     */
    static TaskDag stencilHalo(int ranks, int steps, double task_flops,
                               double edge_bytes, App app);

    /**
     * @p stages bulk-synchronous phases: a serial fork task fans out to
     * @p width parallel tasks which join into the next fork.
     */
    static TaskDag forkJoin(int width, int stages, double task_flops,
                            double edge_bytes, App app);

    /**
     * @p leaves inputs folded by @p fanin per reduction step until one
     * task remains.
     */
    static TaskDag reductionTree(int leaves, int fanin, double task_flops,
                                 double edge_bytes, App app);

    /**
     * @p layers layers of @p width tasks; each task draws an edge from
     * every previous-layer task with probability @p edge_prob (at least
     * one, so no spurious roots), decided by a hash of (seed, src, dst)
     * — identical at any thread count and across reruns.
     */
    static TaskDag randomLayered(int layers, int width, double edge_prob,
                                 std::uint64_t seed, double task_flops,
                                 double edge_bytes, App app);

  private:
    std::string name_;
    std::vector<DagTask> tasks_;
    std::vector<std::vector<DagEdge>> succs_;
    std::size_t edges_ = 0;
};

} // namespace ena

#endif // ENA_TASKGRAPH_TASK_DAG_HH

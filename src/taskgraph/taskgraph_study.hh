/**
 * @file
 * Task-graph design-space studies: how scheduler choice, fabric
 * topology, and machine size move a DAG workload's makespan, and what
 * co-scheduled jobs do to each other. The task-graph counterpart of
 * ScaleOutStudy, with the same execution discipline:
 *
 *  - cells shard over the process-wide ThreadPool, one output slot per
 *    grid index, serial reduction in index order — bit-identical to a
 *    serial run at any thread count (gated by bench_taskgraph and
 *    tests/taskgraph);
 *  - node evaluations go through a study-owned EvalMemoCache
 *    (evaluateMemo == evaluate bitwise), so an 8-app DAG costs eight
 *    evaluator calls no matter how many cells the grid has;
 *  - invalid cells are quarantined (ok == false, error says why), not
 *    fatal — one bad topology/node-count pairing cannot kill a sweep.
 *
 * The job-mix study models interference the way CommModel models
 * congestion: co-scheduled jobs split the machine evenly and the
 * fabric's delivered edge bandwidth divides by the job count. A
 * zero-communication DAG is therefore interference-free by
 * construction (slowdown exactly 1.0) — the reduction the tests gate.
 */

#ifndef ENA_TASKGRAPH_TASKGRAPH_STUDY_HH
#define ENA_TASKGRAPH_TASKGRAPH_STUDY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cluster_config.hh"
#include "core/eval_memo.hh"
#include "core/node_evaluator.hh"
#include "taskgraph/scheduler.hh"

namespace ena {

/** One cell of the scheduler x topology x node-count sweep. */
struct TaskGraphSweepPoint
{
    std::size_t scheduler = 0;      ///< index into the scheduler list
    ClusterTopology topology = ClusterTopology::FatTree;
    int nodes = 0;

    double makespanSeconds = 0.0;
    double criticalPathSeconds = 0.0;  ///< all-edges-remote heaviest path
    double speedup = 0.0;           ///< serial work / makespan
    double efficiency = 0.0;        ///< speedup / nodes
    double utilization = 0.0;       ///< busy fraction of the machine
    double commSeconds = 0.0;       ///< charged cross-node transfer time
    std::size_t edgesCosted = 0;

    /** False when the cell was quarantined; @p error says why. */
    bool ok = true;
    std::string error;
};

/** One job's view of a shared machine. */
struct JobInterference
{
    std::string dag;                ///< TaskDag::label() of the job
    double aloneSeconds = 0.0;      ///< makespan with the fabric to itself
    double sharedSeconds = 0.0;     ///< makespan with the fabric split
    double slowdown = 1.0;          ///< shared / alone (>= 1)
};

/** The job-mix interference study's answer. */
struct JobMixResult
{
    int jobs = 0;
    int nodesPerJob = 0;            ///< even machine split
    std::vector<JobInterference> perJob;
    double meanSlowdown = 1.0;
    double worstSlowdown = 1.0;
};

class TaskGraphStudy
{
  public:
    /** @p base supplies link/shape parameters; sweeps vary the node
     *  count and topology on top of it. */
    TaskGraphStudy(const NodeEvaluator &eval, ClusterConfig base);

    /**
     * Scheduler x topology x node-count sweep, flattened
     * scheduler-major then topology-major then node-count. Invalid
     * cells are quarantined (ok == false), not fatal.
     */
    std::vector<TaskGraphSweepPoint> sweep(
        const TaskDag &dag, const NodeConfig &cfg,
        const std::vector<DagScheduler> &schedulers,
        const std::vector<ClusterTopology> &topologies,
        const std::vector<int> &node_counts) const;

    /**
     * Co-schedule @p dags on @p total_nodes nodes split evenly: each
     * job runs alone on its partition, then with the fabric's edge
     * bandwidth divided by the job count, and the slowdown is the
     * ratio. Jobs evaluate in parallel, one slot each; the mean folds
     * serially in index order.
     */
    JobMixResult jobMix(const std::vector<TaskDag> &dags,
                        const NodeConfig &cfg, DagScheduler policy,
                        int total_nodes) const;

    const ClusterConfig &baseConfig() const { return base_; }

  private:
    const NodeEvaluator &eval_;
    ClusterConfig base_;
    mutable EvalMemoCache memo_;
};

} // namespace ena

#endif // ENA_TASKGRAPH_TASKGRAPH_STUDY_HH

#include "taskgraph/taskgraph_study.hh"

#include <algorithm>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ena {

namespace {

telemetry::Counter &
sweepCellCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "taskgraph.sweep_cells",
        "scheduler x topology x node-count cells evaluated");
    return c;
}

telemetry::Counter &
quarantinedCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "sweep.configs_failed",
        "grid points quarantined instead of evaluated");
    return c;
}

} // anonymous namespace

TaskGraphStudy::TaskGraphStudy(const NodeEvaluator &eval,
                               ClusterConfig base)
    : eval_(eval), base_(base)
{
    base_.validate();
}

std::vector<TaskGraphSweepPoint>
TaskGraphStudy::sweep(const TaskDag &dag, const NodeConfig &cfg,
                      const std::vector<DagScheduler> &schedulers,
                      const std::vector<ClusterTopology> &topologies,
                      const std::vector<int> &node_counts) const
{
    ENA_SPAN("taskgraph", "taskgraph_sweep");
    const std::size_t nt = topologies.size();
    const std::size_t nn = node_counts.size();
    return ThreadPool::global().parallelMap(
        schedulers.size() * nt * nn, [&](std::size_t i) {
            telemetry::ScopedSpan span("taskgraph", "evaluate_cell");
            TaskGraphSweepPoint p;
            p.scheduler = i / (nt * nn);
            p.topology = topologies[(i / nn) % nt];
            p.nodes = node_counts[i % nn];

            ClusterConfig cc = base_;
            cc.topology = p.topology;
            cc.nodes = p.nodes;
            // Explicit torus dims only fit the base node count.
            cc.torusX = cc.torusY = cc.torusZ = 0;

            Status valid = cc.tryValidate();
            if (valid.ok())
                valid = cfg.tryValidate();
            if (valid.ok())
                valid = dag.tryValidate();
            if (!valid.ok()) {
                p.ok = false;
                p.error =
                    valid.withContext("taskgraph sweep cell ", i).toString();
                quarantinedCounter().add();
                warn("taskgraph sweep: quarantined cell ", i, ": ",
                     p.error);
                return p;
            }

            try {
                InterNodeNetwork net(cc);
                DagCostModel cost =
                    DagCostModel::build(dag, eval_, cfg, net, &memo_);
                Schedule s = scheduleDag(dag, cost,
                                         schedulers[p.scheduler], p.nodes);
                p.makespanSeconds = s.makespanSeconds;
                p.criticalPathSeconds = criticalPathSeconds(dag, cost);
                p.speedup = s.speedup();
                p.efficiency = s.efficiency();
                p.utilization = s.utilization();
                p.commSeconds = s.totalCommSeconds;
                p.edgesCosted = s.edgesCosted;
                sweepCellCounter().add();
            } catch (const std::exception &e) {
                const std::size_t sched = p.scheduler;
                p = TaskGraphSweepPoint{};
                p.scheduler = sched;
                p.topology = topologies[(i / nn) % nt];
                p.nodes = node_counts[i % nn];
                p.ok = false;
                p.error = e.what();
                quarantinedCounter().add();
                warn("taskgraph sweep: quarantined cell ", i, ": ",
                     p.error);
            }
            return p;
        });
}

JobMixResult
TaskGraphStudy::jobMix(const std::vector<TaskDag> &dags,
                       const NodeConfig &cfg, DagScheduler policy,
                       int total_nodes) const
{
    ENA_ASSERT(!dags.empty(), "job mix needs at least one job");
    ENA_ASSERT(total_nodes >= static_cast<int>(dags.size()),
               "cannot split ", total_nodes, " nodes across ",
               dags.size(), " jobs");
    ENA_SPAN("taskgraph", "job_mix");

    JobMixResult r;
    r.jobs = static_cast<int>(dags.size());
    r.nodesPerJob = total_nodes / r.jobs;

    ClusterConfig cc = base_;
    cc.nodes = total_nodes;
    cc.torusX = cc.torusY = cc.torusZ = 0;
    InterNodeNetwork net(cc);

    r.perJob = ThreadPool::global().parallelMap(
        dags.size(), [&](std::size_t i) {
            telemetry::ScopedSpan span("taskgraph", "job_mix_job");
            JobInterference j;
            j.dag = dags[i].label();
            DagCostModel alone =
                DagCostModel::build(dags[i], eval_, cfg, net, &memo_);
            j.aloneSeconds =
                scheduleDag(dags[i], alone, policy, r.nodesPerJob)
                    .makespanSeconds;
            // Sharing the fabric: every job's edges see 1/jobs of the
            // delivered bandwidth. Task times are unaffected, so a
            // zero-communication job is interference-free bitwise.
            DagCostModel shared = alone;
            shared.edgeBandwidthBps =
                alone.edgeBandwidthBps / static_cast<double>(r.jobs);
            j.sharedSeconds =
                scheduleDag(dags[i], shared, policy, r.nodesPerJob)
                    .makespanSeconds;
            j.slowdown = j.aloneSeconds > 0.0
                             ? j.sharedSeconds / j.aloneSeconds
                             : 1.0;
            return j;
        });

    double sum = 0.0;
    for (const JobInterference &j : r.perJob) {
        sum += j.slowdown;
        r.worstSlowdown = std::max(r.worstSlowdown, j.slowdown);
    }
    r.meanSlowdown = sum / static_cast<double>(r.jobs);
    return r;
}

} // namespace ena

#include "gpu/mem_stack_endpoint.hh"

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

MemStackEndpoint::MemStackEndpoint(Simulation &sim,
                                   const std::string &name,
                                   NodeId node_id, HbmStack &stack,
                                   Network &network,
                                   std::uint32_t data_bytes,
                                   std::uint32_t ack_bytes)
    : SimObject(sim, name), nodeId_(node_id), stack_(stack),
      network_(network), dataBytes_(data_bytes), ackBytes_(ack_bytes)
{
    network_.attach(nodeId_, this, domain());
}

void
MemStackEndpoint::receivePacket(const Packet &pkt)
{
    ENA_ASSERT(!pkt.isResponse, name(), " received a response packet");

    if (!pkt.needsResponse) {
        // Posted writeback: just perform the access.
        stack_.access(pkt.addr, dataBytes_, true, [] {});
        return;
    }

    Packet resp;
    resp.id = pkt.id;
    resp.src = nodeId_;
    resp.dst = pkt.src;
    resp.bytes = pkt.isWrite ? ackBytes_ : dataBytes_;
    resp.isResponse = true;
    resp.addr = pkt.addr;
    resp.isWrite = pkt.isWrite;

    stack_.access(pkt.addr, dataBytes_, pkt.isWrite,
                  [this, resp] {
                      Packet r = resp;
                      r.injectTick = curTick();
                      network_.send(r);
                  });
}

} // namespace ena

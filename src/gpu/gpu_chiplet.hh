/**
 * @file
 * One GPU chiplet: compute units, a shared L2, the TSV path to the
 * 3D-stacked local HBM, and the network port to remote stacks.
 *
 * In chiplet mode, L2 misses homed on the local stack take the direct
 * vertical (TSV) path; remote misses cross the interposer network. In
 * monolithic mode (the Fig. 7 comparison), every miss uses the flat
 * crossbar, local or not.
 */

#ifndef ENA_GPU_GPU_CHIPLET_HH
#define ENA_GPU_GPU_CHIPLET_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "mem/ext_memory.hh"
#include "mem/memory_manager.hh"
#include "mem/cache.hh"
#include "mem/hbm_stack.hh"
#include "noc/network.hh"
#include "sim/sim_object.hh"

namespace ena {

class ComputeUnit;

struct GpuChipletParams
{
    double clockGhz = 1.0;
    CacheParams l2 = {2ull << 20, 64, 16, ReplPolicy::Lru};
    std::uint32_t l2HitCycles = 24;
    std::uint32_t tsvCycles = 4;        ///< vertical hop to local stack
    std::uint32_t reqBytes = 16;        ///< request header
    std::uint32_t dataBytes = 64;       ///< cache-line payload
    bool monolithic = false;            ///< flat-crossbar mode
};

class GpuChiplet : public SimObject, public NetworkEndpoint
{
  public:
    using Callback = std::function<void()>;

    GpuChiplet(Simulation &sim, const std::string &name, int index,
               NodeId node_id, GpuChipletParams params,
               const AddressMap &addr_map, Network &network);

    /** The stack physically above this chiplet (chiplet mode's fast
     *  path); must be set before any traffic flows. */
    void setLocalStack(int stack_index, HbmStack *stack);

    /** Resolver from stack index to its network node id. */
    void setStackNode(int stack_index, NodeId node);

    /**
     * Enable the two-level memory path: post-L2 accesses consult the
     * memory manager, and pages resident in external memory are
     * serviced by the external network instead of an HBM stack
     * (Section II-B3's software-managed mode, cycle-level).
     */
    void setTwoLevelMemory(MemoryManager *manager,
                           ExternalMemoryNetwork *ext);

    /** CU-side memory request (post-L1). */
    void requestMemory(std::uint64_t addr, bool is_write, Callback done);

    /** Network responses for this chiplet's outstanding requests. */
    void receivePacket(const Packet &pkt) override;

    int index() const { return index_; }
    NodeId nodeId() const { return nodeId_; }
    const Cache &l2() const { return *l2_; }

    double localBytes() const { return statLocalBytes_.value(); }
    double remoteBytes() const { return statRemoteBytes_.value(); }
    double externalBytes() const { return statExternalBytes_.value(); }

    /** Fraction of post-L2 traffic that left the chiplet. */
    double
    remoteTrafficFraction() const
    {
        double total = statLocalBytes_.value() + statRemoteBytes_.value();
        return total > 0.0 ? statRemoteBytes_.value() / total : 0.0;
    }

  private:
    Tick cycle() const { return clockPeriod(params_.clockGhz); }

    /** Send a post-L2 access to its home stack. */
    void sendToStack(std::uint64_t addr, bool is_write, Callback done);

    /** Fire-and-forget dirty-line writeback. */
    void writeback(std::uint64_t addr);

    int index_;
    NodeId nodeId_;
    GpuChipletParams params_;
    const AddressMap &addrMap_;
    Network &network_;
    std::unique_ptr<Cache> l2_;

    int localStackIndex_ = -1;
    HbmStack *localStack_ = nullptr;
    std::vector<NodeId> stackNodes_;
    MemoryManager *memManager_ = nullptr;
    ExternalMemoryNetwork *extMem_ = nullptr;

    std::uint64_t nextPktId_ = 1;
    std::unordered_map<std::uint64_t, Callback> pending_;

    StatScalar statL2Hits_;
    StatScalar statL2Misses_;
    StatScalar statLocalBytes_;
    StatScalar statRemoteBytes_;
    StatScalar statExternalBytes_;
};

} // namespace ena

#endif // ENA_GPU_GPU_CHIPLET_HH

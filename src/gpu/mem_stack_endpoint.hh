/**
 * @file
 * Network-side wrapper of an HBM stack: receives request packets,
 * performs the timed stack access, and returns response packets to the
 * requester.
 */

#ifndef ENA_GPU_MEM_STACK_ENDPOINT_HH
#define ENA_GPU_MEM_STACK_ENDPOINT_HH

#include "mem/hbm_stack.hh"
#include "noc/network.hh"
#include "sim/sim_object.hh"

namespace ena {

class MemStackEndpoint : public SimObject, public NetworkEndpoint
{
  public:
    MemStackEndpoint(Simulation &sim, const std::string &name,
                     NodeId node_id, HbmStack &stack, Network &network,
                     std::uint32_t data_bytes = 64,
                     std::uint32_t ack_bytes = 16);

    void receivePacket(const Packet &pkt) override;

    NodeId nodeId() const { return nodeId_; }

  private:
    NodeId nodeId_;
    HbmStack &stack_;
    Network &network_;
    std::uint32_t dataBytes_;
    std::uint32_t ackBytes_;
};

} // namespace ena

#endif // ENA_GPU_MEM_STACK_ENDPOINT_HH

/**
 * @file
 * Wavefront-level GPU compute-unit timing model.
 *
 * Each CU holds several wavefront slots; every cycle it issues one
 * operation from a ready wavefront (round-robin). Compute ops keep the
 * wavefront busy for their cycle count; memory ops go through the
 * per-CU L1 and, on a miss, to the chiplet's memory port, with a bounded
 * number of outstanding misses per wavefront (the latency-hiding
 * mechanism whose limits make remote-chiplet latency visible in Fig. 7).
 */

#ifndef ENA_GPU_COMPUTE_UNIT_HH
#define ENA_GPU_COMPUTE_UNIT_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "sim/sim_object.hh"
#include "workloads/trace_gen.hh"

namespace ena {

class GpuChiplet;

struct ComputeUnitParams
{
    double clockGhz = 1.0;
    int wavefrontSlots = 8;
    int maxOutstandingPerWf = 4;
    std::uint64_t memOpsPerWavefront = 300;
    CacheParams l1 = {16ull << 10, 64, 4, ReplPolicy::Lru};
    std::uint32_t l1HitCycles = 4;
};

class ComputeUnit : public SimObject
{
  public:
    ComputeUnit(Simulation &sim, const std::string &name,
                GpuChiplet &chiplet, ComputeUnitParams params);

    /** Install one wavefront's trace; call before startup(). */
    void addWavefront(std::unique_ptr<TraceGenerator> gen);

    /** Invoked once, when the last wavefront retires. */
    void setDoneCallback(std::function<void()> cb) { doneCb_ = std::move(cb); }

    void startup() override;

    /** True when every wavefront has retired its memory-op quota. */
    bool done() const { return doneWavefronts_ == wavefronts_.size(); }

    /** Completion callback (memory response arrived); public for the
     *  chiplet to invoke. */
    void memResponse(int wf_index);

    std::uint64_t memOpsIssued() const { return memOps_; }
    const Cache &l1() const { return *l1_; }

  private:
    struct Wavefront
    {
        std::unique_ptr<TraceGenerator> gen;
        Tick busyUntil = 0;
        int outstanding = 0;
        std::uint64_t memOpsLeft = 0;
        bool issuedAll = false;
        bool retired = false;
    };

    Tick cycle() const { return clockPeriod(params_.clockGhz); }

    /** Issue loop: one op per cycle while someone is ready. */
    void tryIssue();

    /** Schedule the issue event (if idle) at the earliest useful tick. */
    void wake(Tick when);

    bool wavefrontReady(const Wavefront &wf) const;
    void issueFrom(Wavefront &wf, int index);
    void checkRetire(Wavefront &wf);

    GpuChiplet &chiplet_;
    ComputeUnitParams params_;
    std::vector<Wavefront> wavefronts_;
    std::unique_ptr<Cache> l1_;
    size_t rrNext_ = 0;
    size_t doneWavefronts_ = 0;
    std::uint64_t memOps_ = 0;
    std::function<void()> doneCb_;

    EventFunctionWrapper issueEvent_;
};

} // namespace ena

#endif // ENA_GPU_COMPUTE_UNIT_HH

#include "gpu/compute_unit.hh"

#include <algorithm>

#include "gpu/gpu_chiplet.hh"
#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

ComputeUnit::ComputeUnit(Simulation &sim, const std::string &name,
                         GpuChiplet &chiplet, ComputeUnitParams params)
    : SimObject(sim, name), chiplet_(chiplet), params_(params),
      l1_(std::make_unique<Cache>(params.l1)),
      issueEvent_([this] { tryIssue(); }, name + ".issue")
{
    ENA_ASSERT(params_.wavefrontSlots > 0, "CU needs wavefront slots");
    ENA_ASSERT(params_.maxOutstandingPerWf > 0,
               "CU needs outstanding-miss capacity");
}

void
ComputeUnit::addWavefront(std::unique_ptr<TraceGenerator> gen)
{
    ENA_ASSERT(wavefronts_.size() <
                   static_cast<size_t>(params_.wavefrontSlots),
               "too many wavefronts for ", name());
    Wavefront wf;
    wf.gen = std::move(gen);
    wf.memOpsLeft = params_.memOpsPerWavefront;
    wavefronts_.push_back(std::move(wf));
}

void
ComputeUnit::startup()
{
    if (!wavefronts_.empty())
        wake(curTick());
}

bool
ComputeUnit::wavefrontReady(const Wavefront &wf) const
{
    return !wf.issuedAll && wf.busyUntil <= curTick() &&
           wf.outstanding < params_.maxOutstandingPerWf;
}

void
ComputeUnit::wake(Tick when)
{
    if (issueEvent_.scheduled()) {
        if (issueEvent_.when() <= when)
            return;
        eventq().deschedule(&issueEvent_);
    }
    eventq().schedule(&issueEvent_, std::max(when, curTick()));
}

void
ComputeUnit::tryIssue()
{
    // Round-robin pick of one ready wavefront.
    int picked = -1;
    for (size_t i = 0; i < wavefronts_.size(); ++i) {
        size_t idx = (rrNext_ + i) % wavefronts_.size();
        if (wavefrontReady(wavefronts_[idx])) {
            picked = static_cast<int>(idx);
            break;
        }
    }

    if (picked >= 0) {
        rrNext_ = (picked + 1) % wavefronts_.size();
        issueFrom(wavefronts_[picked], picked);
        // Issue again next cycle.
        wake(curTick() + cycle());
        return;
    }

    // Nothing ready: sleep until the next compute completion (memory
    // responses call wake() themselves).
    Tick next = ~Tick(0);
    for (const Wavefront &wf : wavefronts_) {
        if (!wf.issuedAll && wf.outstanding < params_.maxOutstandingPerWf)
            next = std::min(next, wf.busyUntil);
    }
    if (next != ~Tick(0) && next > curTick())
        wake(next);
}

void
ComputeUnit::issueFrom(Wavefront &wf, int index)
{
    TraceOp op = wf.gen->next();
    if (op.kind == TraceOp::Kind::Compute) {
        wf.busyUntil = curTick() + op.computeCycles * cycle();
        return;
    }

    // Memory operation.
    ++memOps_;
    --wf.memOpsLeft;
    if (wf.memOpsLeft == 0)
        wf.issuedAll = true;

    bool is_write = op.kind == TraceOp::Kind::Store;
    CacheOutcome l1 = l1_->access(op.addr, is_write);
    if (l1.hit) {
        // Short pipeline bubble; no L2 traffic.
        wf.busyUntil = curTick() + params_.l1HitCycles * cycle();
        checkRetire(wf);
        return;
    }

    ++wf.outstanding;
    chiplet_.requestMemory(op.addr, is_write,
                           [this, index] { memResponse(index); });
    // Dirty L1 victims propagate to the L2 as writes (no wavefront
    // stall; accounted as chiplet-internal traffic by the L2 model).
    if (l1.writeback)
        chiplet_.requestMemory(l1.victimAddr, true, [] {});
}

void
ComputeUnit::memResponse(int wf_index)
{
    ENA_ASSERT(wf_index >= 0 &&
                   wf_index < static_cast<int>(wavefronts_.size()),
               "bad wavefront index");
    Wavefront &wf = wavefronts_[wf_index];
    ENA_ASSERT(wf.outstanding > 0, "response without outstanding miss");
    --wf.outstanding;
    checkRetire(wf);
    wake(curTick());
}

void
ComputeUnit::checkRetire(Wavefront &wf)
{
    if (!wf.retired && wf.issuedAll && wf.outstanding == 0) {
        wf.retired = true;
        ++doneWavefronts_;
        if (done() && doneCb_)
            doneCb_();
    }
}

} // namespace ena

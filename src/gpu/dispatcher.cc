#include "gpu/dispatcher.hh"

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

namespace {

/** Generous per-chiplet arena (supports many wavefronts). */
constexpr std::uint64_t arenaStride = 8ull << 30;

} // anonymous namespace

Dispatcher::Dispatcher(Simulation &sim, const std::string &name,
                       const KernelProfile &profile, DispatchParams params)
    : SimObject(sim, name), profile_(profile), params_(params)
{
    ENA_ASSERT(params_.privateBytesPerWf >= TraceGenerator::accessBytes,
               "private region too small");
}

std::uint64_t
Dispatcher::chipletArenaBase(int chiplet_index) const
{
    return params_.privateBase + arenaStride * chiplet_index;
}

std::uint64_t
Dispatcher::chipletArenaSize(int) const
{
    return arenaStride;
}

void
Dispatcher::assign(ComputeUnit &cu, int chiplet_index)
{
    if (wfPerChiplet_.size() <= static_cast<size_t>(chiplet_index))
        wfPerChiplet_.resize(chiplet_index + 1, 0);

    for (int w = 0; w < params_.wavefrontsPerCu; ++w) {
        int wf_in_chiplet = wfPerChiplet_[chiplet_index]++;
        StreamLayout layout;
        layout.privateBase =
            chipletArenaBase(chiplet_index) +
            static_cast<std::uint64_t>(wf_in_chiplet) *
                params_.privateBytesPerWf;
        ENA_ASSERT(layout.privateBase + params_.privateBytesPerWf <=
                       chipletArenaBase(chiplet_index) + arenaStride,
                   "chiplet arena overflow: too many wavefronts");
        layout.privateSize = params_.privateBytesPerWf;
        layout.sharedBase = params_.sharedBase;
        layout.sharedSize = params_.sharedBytes;
        cu.addWavefront(std::make_unique<TraceGenerator>(
            profile_, layout, params_.seed + nextWfId_++));
    }
    ++cus_;
    cu.setDoneCallback([this] {
        // The CU retires in its own domain; completion crosses the
        // interposer back to the dispatch queue, so it pays one
        // lookahead of latency when the domains differ (serially the
        // branch is never taken and the callback stays synchronous).
        if (sim().crossesDomain(domain())) {
            sim().postCrossDomain(domain(),
                                  sim().now() + sim().lookahead(),
                                  [this] { cuDone(); }, "cu done");
        } else {
            cuDone();
        }
    });
}

void
Dispatcher::cuDone()
{
    ++doneCus_;
    if (doneCus_ == cus_)
        finishTick_ = curTick();
}

} // namespace ena

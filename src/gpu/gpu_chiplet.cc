#include "gpu/gpu_chiplet.hh"

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

GpuChiplet::GpuChiplet(Simulation &sim, const std::string &name,
                       int index, NodeId node_id, GpuChipletParams params,
                       const AddressMap &addr_map, Network &network)
    : SimObject(sim, name), index_(index), nodeId_(node_id),
      params_(params), addrMap_(addr_map), network_(network),
      l2_(std::make_unique<Cache>(params.l2, 7 + index)),
      statL2Hits_(sim.stats(), name + ".l2Hits", "L2 hits"),
      statL2Misses_(sim.stats(), name + ".l2Misses", "L2 misses"),
      statLocalBytes_(sim.stats(), name + ".localBytes",
                      "post-L2 bytes staying on-chiplet"),
      statRemoteBytes_(sim.stats(), name + ".remoteBytes",
                       "post-L2 bytes leaving the chiplet"),
      statExternalBytes_(sim.stats(), name + ".externalBytes",
                         "post-L2 bytes serviced off-package")
{
    network_.attach(nodeId_, this, domain());
}

void
GpuChiplet::setLocalStack(int stack_index, HbmStack *stack)
{
    localStackIndex_ = stack_index;
    localStack_ = stack;
}

void
GpuChiplet::setTwoLevelMemory(MemoryManager *manager,
                              ExternalMemoryNetwork *ext)
{
    ENA_ASSERT(manager && ext, "two-level path needs both pieces");
    memManager_ = manager;
    extMem_ = ext;
}

void
GpuChiplet::setStackNode(int stack_index, NodeId node)
{
    if (stackNodes_.size() <= static_cast<size_t>(stack_index))
        stackNodes_.resize(stack_index + 1, invalidNode);
    stackNodes_[stack_index] = node;
}

void
GpuChiplet::requestMemory(std::uint64_t addr, bool is_write,
                          Callback done)
{
    CacheOutcome l2 = l2_->access(addr, is_write);
    if (l2.hit) {
        ++statL2Hits_;
        eventq().scheduleLambda(
            curTick() + params_.l2HitCycles * cycle(), std::move(done),
            "l2 hit");
        return;
    }
    ++statL2Misses_;
    if (memManager_ &&
        memManager_->access(addr, is_write) == MemLevel::External) {
        // Off-package: cross the interposer to an external interface,
        // then the SerDes chain services the request.
        statExternalBytes_ += params_.reqBytes + params_.dataBytes;
        Tick to_edge = 4 * cycle();   // interposer traversal to the I/O
        Callback cb = std::move(done);
        std::uint64_t a = addr;
        bool w = is_write;
        eventq().scheduleLambda(
            curTick() + to_edge,
            [this, a, w, cb = std::move(cb)]() mutable {
                extMem_->access(a, params_.dataBytes, w, std::move(cb));
            },
            "to external interface");
    } else {
        sendToStack(addr, is_write, std::move(done));
    }
    if (l2.writeback)
        writeback(l2.victimAddr);
}

void
GpuChiplet::sendToStack(std::uint64_t addr, bool is_write, Callback done)
{
    int home = addrMap_.stackFor(addr);
    bool local = home == localStackIndex_;

    std::uint32_t req_bytes =
        is_write ? params_.dataBytes : params_.reqBytes;
    std::uint32_t resp_bytes =
        is_write ? params_.reqBytes : params_.dataBytes;

    if (local) {
        statLocalBytes_ += req_bytes + resp_bytes;
    } else {
        statRemoteBytes_ += req_bytes + resp_bytes;
    }

    if (local && !params_.monolithic) {
        // Direct vertical path: TSVs up to the stack, access, TSVs down.
        ENA_ASSERT(localStack_, "local stack not wired on ", name());
        Tick tsv = params_.tsvCycles * cycle();
        Callback cb = std::move(done);
        HbmStack *stack = localStack_;
        std::uint64_t a = addr;
        bool w = is_write;
        eventq().scheduleLambda(
            curTick() + tsv,
            [this, stack, a, w, cb = std::move(cb), tsv]() mutable {
                stack->access(a, params_.dataBytes, w,
                              [this, cb = std::move(cb), tsv]() mutable {
                                  eventq().scheduleLambda(
                                      curTick() + tsv, std::move(cb),
                                      "tsv return");
                              });
            },
            "tsv to local stack");
        return;
    }

    // Network path (remote stack, or everything in monolithic mode).
    ENA_ASSERT(home >= 0 &&
                   home < static_cast<int>(stackNodes_.size()) &&
                   stackNodes_[home] != invalidNode,
               "stack ", home, " not wired on ", name());
    Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(index_) << 48) | nextPktId_++;
    pkt.src = nodeId_;
    pkt.dst = stackNodes_[home];
    pkt.bytes = req_bytes;
    pkt.addr = addr;
    pkt.isWrite = is_write;
    pkt.injectTick = curTick();
    pending_[pkt.id] = std::move(done);
    network_.send(pkt);
}

void
GpuChiplet::writeback(std::uint64_t addr)
{
    int home = addrMap_.stackFor(addr);
    bool local = home == localStackIndex_;
    if (local) {
        statLocalBytes_ += params_.dataBytes;
    } else {
        statRemoteBytes_ += params_.dataBytes;
    }

    if (local && !params_.monolithic) {
        ENA_ASSERT(localStack_, "local stack not wired on ", name());
        HbmStack *stack = localStack_;
        std::uint64_t a = addr;
        eventq().scheduleLambda(
            curTick() + params_.tsvCycles * cycle(),
            [this, stack, a] {
                stack->access(a, params_.dataBytes, true, [] {});
            },
            "tsv writeback");
        return;
    }

    ENA_ASSERT(home >= 0 &&
                   home < static_cast<int>(stackNodes_.size()) &&
                   stackNodes_[home] != invalidNode,
               "stack ", home, " not wired on ", name());
    Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(index_) << 48) | nextPktId_++;
    pkt.src = nodeId_;
    pkt.dst = stackNodes_[home];
    pkt.bytes = params_.dataBytes;
    pkt.addr = addr;
    pkt.isWrite = true;
    pkt.needsResponse = false;
    pkt.injectTick = curTick();
    network_.send(pkt);
}

void
GpuChiplet::receivePacket(const Packet &pkt)
{
    ENA_ASSERT(pkt.isResponse, name(), " received a non-response packet");
    auto it = pending_.find(pkt.id);
    ENA_ASSERT(it != pending_.end(), name(),
               " received response for unknown request ", pkt.id);
    Callback done = std::move(it->second);
    pending_.erase(it);
    done();
}

} // namespace ena

/**
 * @file
 * Kernel dispatcher: carves the synthetic kernel into wavefronts across
 * all compute units and reports completion time, playing the role of the
 * HSA queue/dispatch path in the real system.
 */

#ifndef ENA_GPU_DISPATCHER_HH
#define ENA_GPU_DISPATCHER_HH

#include <vector>

#include "gpu/compute_unit.hh"
#include "sim/sim_object.hh"
#include "workloads/kernel_profile.hh"
#include "workloads/trace_gen.hh"

namespace ena {

struct DispatchParams
{
    int wavefrontsPerCu = 8;
    /** Bytes of private streaming region per wavefront. */
    std::uint64_t privateBytesPerWf = 1ull << 20;
    /** Shared (cross-chiplet) region size. */
    std::uint64_t sharedBytes = 64ull << 20;
    /** Base address of the shared region. */
    std::uint64_t sharedBase = 0;
    /** Base address of the private arena (above the shared region). */
    std::uint64_t privateBase = 1ull << 30;
    std::uint64_t seed = 12345;
};

class Dispatcher : public SimObject
{
  public:
    Dispatcher(Simulation &sim, const std::string &name,
               const KernelProfile &profile, DispatchParams params);

    /**
     * Populate @p cu with this dispatcher's wavefronts. @p chiplet_index
     * selects the private-arena slice so the study can place each
     * chiplet's pages near its stack.
     */
    void assign(ComputeUnit &cu, int chiplet_index);

    /** Start-of-private-arena for one chiplet (for AddressMap regions). */
    std::uint64_t chipletArenaBase(int chiplet_index) const;
    std::uint64_t chipletArenaSize(int chiplet_index) const;

    bool allDone() const { return doneCus_ == cus_ && cus_ > 0; }
    Tick finishTick() const { return finishTick_; }

  private:
    void cuDone();

    const KernelProfile &profile_;
    DispatchParams params_;
    int cus_ = 0;
    int doneCus_ = 0;
    std::uint64_t nextWfId_ = 0;
    std::vector<int> wfPerChiplet_;
    Tick finishTick_ = 0;
};

} // namespace ena

#endif // ENA_GPU_DISPATCHER_HH

/**
 * @file
 * CPU cluster model for the cycle-level EHP simulation.
 *
 * The EHP's CPU cores orchestrate GPU work and run serial sections; in
 * the Fig. 7 study their visible effect is CPU<->memory and CPU<->GPU
 * traffic crossing the interposer. Each cluster issues pipelined reads
 * and writes into the shared region with a configurable rate per core,
 * via the same network/stack path as the GPU chiplets.
 */

#ifndef ENA_CPU_CPU_CLUSTER_HH
#define ENA_CPU_CPU_CLUSTER_HH

#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "noc/network.hh"
#include "sim/sim_object.hh"
#include "util/rng.hh"

namespace ena {

struct CpuClusterParams
{
    int cores = 16;
    double accessNsPerCore = 400.0;  ///< mean gap between core accesses
    double writeFraction = 0.3;
    std::uint64_t sharedBase = 0;
    std::uint64_t sharedSize = 64ull << 20;
    std::uint32_t reqBytes = 16;
    std::uint32_t dataBytes = 64;
    std::uint64_t seed = 999;
    /** Stop issuing after this many accesses (0 = unlimited). */
    std::uint64_t maxAccesses = 0;
};

class CpuCluster : public SimObject, public NetworkEndpoint
{
  public:
    CpuCluster(Simulation &sim, const std::string &name, NodeId node_id,
               CpuClusterParams params, const AddressMap &addr_map,
               Network &network);

    /** Wire one stack's network node id. */
    void setStackNode(int stack_index, NodeId node);

    void startup() override;

    void receivePacket(const Packet &pkt) override;

    /** Stop issuing new accesses (the study calls this at kernel end). */
    void quiesce() { quiesced_ = true; }

    std::uint64_t accessesIssued() const { return issued_; }

  private:
    void issueNext();

    NodeId nodeId_;
    CpuClusterParams params_;
    const AddressMap &addrMap_;
    Network &network_;
    Rng rng_;
    std::vector<NodeId> stackNodes_;
    std::uint64_t nextPktId_ = 1;
    std::uint64_t issued_ = 0;
    bool quiesced_ = false;

    EventFunctionWrapper issueEvent_;
    StatScalar statAccesses_;
    StatScalar statBytes_;
};

} // namespace ena

#endif // ENA_CPU_CPU_CLUSTER_HH

/**
 * @file
 * In-order CPU core timing model for serial sections.
 *
 * The EHP pairs its GPUs with "high-performance multi-core CPUs for
 * serial or irregular code sections and legacy applications". This
 * model executes a synthetic serial-section instruction mix on a
 * single-issue in-order pipeline: ALU ops issue back to back, branch
 * mispredictions flush, memory operations go through a private L1 and
 * pay a miss latency. It reports IPC and runtime, and backs the
 * AmdahlModel's per-core rate with a microarchitectural grounding.
 */

#ifndef ENA_CPU_CPU_CORE_HH
#define ENA_CPU_CPU_CORE_HH

#include <memory>

#include "mem/cache.hh"
#include "sim/sim_object.hh"
#include "util/rng.hh"

namespace ena {

/** Statistical shape of a serial code section. */
struct SerialSectionProfile
{
    double memFraction = 0.25;        ///< loads+stores per instruction
    double branchFraction = 0.15;
    double branchMissRate = 0.05;     ///< of branches
    double spatialLocality = 0.85;    ///< sequential next access
    std::uint64_t workingSetBytes = 8ull << 20;
    double writeFraction = 0.3;
};

struct CpuCoreParams
{
    double clockGhz = 2.5;
    int branchMissPenalty = 14;       ///< cycles
    int l1HitCycles = 3;
    int memLatencyCycles = 180;       ///< L1 miss to in-package DRAM
    CacheParams l1 = {32ull << 10, 64, 8, ReplPolicy::Lru};
};

class CpuCore : public SimObject
{
  public:
    CpuCore(Simulation &sim, const std::string &name,
            CpuCoreParams params, SerialSectionProfile profile,
            std::uint64_t seed = 1);

    /** Run @p instructions instructions; call before sim.run(). */
    void execute(std::uint64_t instructions);

    bool done() const { return remaining_ == 0 && started_; }

    /** Instructions per cycle achieved so far. */
    double ipc() const;

    /** Effective MIPS at the configured clock. */
    double
    mips() const
    {
        return ipc() * params_.clockGhz * 1000.0;
    }

    std::uint64_t instructionsRetired() const { return retired_; }
    const Cache &l1() const { return *l1_; }

  private:
    Tick cycle() const { return clockPeriod(params_.clockGhz); }

    /** Retire a batch of instructions, then reschedule. */
    void step();

    std::uint64_t nextAddress();

    CpuCoreParams params_;
    SerialSectionProfile profile_;
    Rng rng_;
    std::unique_ptr<Cache> l1_;

    std::uint64_t remaining_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t cursor_ = 0;
    bool started_ = false;

    EventFunctionWrapper stepEvent_;
    StatScalar statRetired_;
    StatScalar statBranchMisses_;
    StatScalar statL1Misses_;
};

} // namespace ena

#endif // ENA_CPU_CPU_CORE_HH

#include "cpu/cpu_cluster.hh"

#include <algorithm>

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

CpuCluster::CpuCluster(Simulation &sim, const std::string &name,
                       NodeId node_id, CpuClusterParams params,
                       const AddressMap &addr_map, Network &network)
    : SimObject(sim, name), nodeId_(node_id), params_(params),
      addrMap_(addr_map), network_(network), rng_(params.seed),
      issueEvent_([this] { issueNext(); }, name + ".issue"),
      statAccesses_(sim.stats(), name + ".accesses",
                    "memory accesses issued"),
      statBytes_(sim.stats(), name + ".bytes", "request bytes issued")
{
    ENA_ASSERT(params_.cores > 0, "CPU cluster needs cores");
    ENA_ASSERT(params_.sharedSize >= params_.dataBytes,
               "shared region too small");
    network_.attach(nodeId_, this, domain());
}

void
CpuCluster::setStackNode(int stack_index, NodeId node)
{
    if (stackNodes_.size() <= static_cast<size_t>(stack_index))
        stackNodes_.resize(stack_index + 1, invalidNode);
    stackNodes_[stack_index] = node;
}

void
CpuCluster::startup()
{
    // Cluster-level issue rate: cores / accessNsPerCore accesses per ns.
    schedule(issueEvent_, static_cast<Tick>(params_.accessNsPerCore /
                                            params_.cores * tickPerNs));
}

void
CpuCluster::issueNext()
{
    if (quiesced_ ||
        (params_.maxAccesses && issued_ >= params_.maxAccesses))
        return;

    std::uint64_t lines = params_.sharedSize / params_.dataBytes;
    std::uint64_t addr =
        params_.sharedBase + rng_.below(lines) * params_.dataBytes;
    bool is_write = rng_.chance(params_.writeFraction);

    int home = addrMap_.stackFor(addr);
    ENA_ASSERT(home >= 0 &&
                   home < static_cast<int>(stackNodes_.size()) &&
                   stackNodes_[home] != invalidNode,
               "stack ", home, " not wired on ", name());

    Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(nodeId_) << 48) | nextPktId_++;
    pkt.src = nodeId_;
    pkt.dst = stackNodes_[home];
    pkt.bytes = is_write ? params_.dataBytes : params_.reqBytes;
    pkt.addr = addr;
    pkt.isWrite = is_write;
    pkt.injectTick = curTick();
    network_.send(pkt);

    ++issued_;
    ++statAccesses_;
    statBytes_ += pkt.bytes;

    // Exponential-ish think time around the configured mean.
    double gap_ns = params_.accessNsPerCore / params_.cores;
    double jitter = 0.5 + rng_.uniform();
    schedule(issueEvent_,
             std::max<Tick>(1, static_cast<Tick>(gap_ns * jitter *
                                                 tickPerNs)));
}

void
CpuCluster::receivePacket(const Packet &pkt)
{
    // Responses complete silently; the cluster models open-loop
    // orchestration traffic rather than a blocking core pipeline.
    ENA_ASSERT(pkt.isResponse, name(), " received a non-response packet");
}

} // namespace ena

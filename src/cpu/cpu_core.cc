#include "cpu/cpu_core.hh"

#include <algorithm>

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

namespace {

/** Instructions retired per step event (amortizes event overhead). */
constexpr std::uint64_t batchSize = 256;

} // anonymous namespace

CpuCore::CpuCore(Simulation &sim, const std::string &name,
                 CpuCoreParams params, SerialSectionProfile profile,
                 std::uint64_t seed)
    : SimObject(sim, name), params_(params), profile_(profile),
      rng_(seed), l1_(std::make_unique<Cache>(params.l1, seed)),
      stepEvent_([this] { step(); }, name + ".step"),
      statRetired_(sim.stats(), name + ".retired",
                   "instructions retired"),
      statBranchMisses_(sim.stats(), name + ".branchMisses",
                        "branch mispredictions"),
      statL1Misses_(sim.stats(), name + ".l1Misses", "L1 misses")
{
    ENA_ASSERT(params_.clockGhz > 0.0, "bad CPU clock");
    cursor_ = rng_.below(profile_.workingSetBytes / 64) * 64;
}

void
CpuCore::execute(std::uint64_t instructions)
{
    ENA_ASSERT(instructions > 0, "nothing to execute");
    ENA_ASSERT(!started_ || done(), "core is already busy");
    remaining_ = instructions;
    started_ = true;
    if (!stepEvent_.scheduled())
        schedule(stepEvent_, 0);
}

std::uint64_t
CpuCore::nextAddress()
{
    if (rng_.chance(profile_.spatialLocality)) {
        cursor_ += 64;
        if (cursor_ + 64 > profile_.workingSetBytes)
            cursor_ = 0;
    } else {
        cursor_ = rng_.below(profile_.workingSetBytes / 64) * 64;
    }
    return cursor_;
}

void
CpuCore::step()
{
    std::uint64_t batch = std::min(remaining_, batchSize);
    std::uint64_t batch_cycles = 0;
    for (std::uint64_t i = 0; i < batch; ++i) {
        batch_cycles += 1;   // single-issue baseline
        double roll = rng_.uniform();
        if (roll < profile_.memFraction) {
            bool is_write = rng_.chance(profile_.writeFraction);
            CacheOutcome out = l1_->access(nextAddress(), is_write);
            if (out.hit) {
                batch_cycles += params_.l1HitCycles - 1;
            } else {
                ++statL1Misses_;
                batch_cycles += params_.memLatencyCycles;
            }
        } else if (roll <
                   profile_.memFraction + profile_.branchFraction) {
            if (rng_.chance(profile_.branchMissRate)) {
                ++statBranchMisses_;
                batch_cycles += params_.branchMissPenalty;
            }
        }
    }

    remaining_ -= batch;
    retired_ += batch;
    statRetired_ += static_cast<double>(batch);
    cycles_ += batch_cycles;

    if (remaining_ > 0)
        schedule(stepEvent_, batch_cycles * cycle());
}

double
CpuCore::ipc() const
{
    return cycles_ > 0
               ? static_cast<double>(retired_) /
                     static_cast<double>(cycles_)
               : 0.0;
}

} // namespace ena

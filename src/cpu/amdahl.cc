#include "cpu/amdahl.hh"

#include <cmath>

#include "util/logging.hh"

namespace ena {

double
AmdahlModel::speedup(int cores) const
{
    ENA_ASSERT(cores >= 1, "need at least one core");
    double s = split_.serialFraction;
    double p = 1.0 - s;
    // Time with one CPU core doing everything: 1 (normalized).
    // Accelerated: parallel fraction sped up by GPU/core ratio; serial
    // fraction sped up by overlapping independent serial work across
    // cores (sub-linear: sqrt).
    double gpu_ratio =
        split_.gpuTeraflops * 1e12 / (split_.cpuCoreGflops * 1e9);
    // Overlapping independent serial work across cores saturates
    // quickly (limited rank-level parallelism in serial sections).
    double serial_speedup =
        std::min(std::sqrt(static_cast<double>(cores)), 6.0);
    double t = p / gpu_ratio + s / serial_speedup;
    return 1.0 / t;
}

double
AmdahlModel::effectiveTeraflops(int cores) const
{
    return speedup(cores) * split_.cpuCoreGflops / 1000.0;
}

int
AmdahlModel::coresForDiminishingReturns(double tolerance,
                                        int max_cores) const
{
    double asymptote = speedup(max_cores);
    for (int c = 1; c <= max_cores; ++c) {
        if (speedup(c) >= asymptote * (1.0 - tolerance))
            return c;
    }
    return max_cores;
}

} // namespace ena

/**
 * @file
 * Analytic CPU-side models: Amdahl-style serial/parallel decomposition
 * used to size the EHP's CPU provisioning (the paper: "the number of CPU
 * cores was carefully chosen to provision enough single-thread
 * performance for irregular code sections and legacy applications").
 */

#ifndef ENA_CPU_AMDAHL_HH
#define ENA_CPU_AMDAHL_HH

namespace ena {

/** A workload split into serial (CPU) and parallel (GPU) phases. */
struct PhaseSplit
{
    double serialFraction = 0.05;  ///< of total work, runs on the CPU
    double cpuCoreGflops = 16.0;   ///< per-core effective rate
    double gpuTeraflops = 18.6;    ///< accelerated-phase rate
};

class AmdahlModel
{
  public:
    explicit AmdahlModel(PhaseSplit split) : split_(split) {}

    /**
     * Node-level speedup over a single CPU core when the parallel
     * fraction runs on the GPU and the serial fraction on @p cores
     * cores (serial sections use one core; extra cores help only via
     * overlapping independent ranks, modeled as sqrt scaling).
     */
    double speedup(int cores) const;

    /** Effective node flops for a unit of work per second baseline. */
    double effectiveTeraflops(int cores) const;

    /**
     * Smallest core count whose speedup is within @p tolerance of the
     * asymptote (how the 32-core EHP provisioning is justified).
     */
    int coresForDiminishingReturns(double tolerance = 0.02,
                                   int max_cores = 128) const;

  private:
    PhaseSplit split_;
};

} // namespace ena

#endif // ENA_CPU_AMDAHL_HH

#include "thermal/package_model.hh"

#include <algorithm>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

EhpPackageModel::EhpPackageModel(PackageThermalParams params)
    : params_(params)
{
    ENA_ASSERT(params_.gridN >= 8, "grid too coarse");
    ENA_ASSERT(params_.dramDies > 0, "need DRAM dies");
}

ThermalGrid
EhpPackageModel::buildGrid(const NodeConfig &cfg,
                           const PowerBreakdown &power) const
{
    const size_t n = params_.gridN;
    const int chiplets = cfg.gpuChiplets;

    // Per-chiplet (column) shares of the node power.
    double cu_w = (power.cuDyn + power.cuStatic) / chiplets;
    double noc_w = (power.nocDyn + power.nocStatic) / chiplets;
    double hbm_w = (power.hbmDyn + power.hbmStatic) / chiplets;

    // ---- interposer ---------------------------------------------------
    Layer interposer;
    interposer.name = "interposer";
    interposer.thicknessM = 100e-6;
    interposer.conductivity = 120.0;
    interposer.power = PowerMap(n, n);
    interposer.power.addUniform(noc_w);

    // ---- GPU die: CU tile array + uniform uncore ----------------------
    Layer gpu;
    gpu.name = "gpu";
    gpu.thicknessM = 200e-6;
    gpu.conductivity = 120.0;
    gpu.power = PowerMap(n, n);

    int slots = params_.tileCols * params_.tileRows;
    int active = std::min(
        slots, static_cast<int>(cfg.cusPerChiplet() + 0.5));
    ENA_ASSERT(active > 0, "no active CU tiles");
    double cu_tile_w = cu_w * 0.85 / active;   // 85% in the CU array
    double uncore_w = cu_w * 0.15;

    // CU array occupies the central 3/4 of the die.
    size_t margin = n / 8;
    size_t array_w = n - 2 * margin;
    size_t tile_w = array_w / params_.tileCols;
    size_t tile_h = array_w / params_.tileRows;
    // Gap cells between tiles sharpen the hot-spot pattern.
    for (int ti = 0; ti < active; ++ti) {
        int col = ti % params_.tileCols;
        int row = ti / params_.tileCols;
        size_t x0 = margin + col * tile_w;
        size_t y0 = margin + row * tile_h;
        size_t w = std::max<size_t>(1, tile_w - 1);
        size_t h = std::max<size_t>(1, tile_h - 1);
        gpu.power.addRect(x0, y0, w, h, cu_tile_w);
    }
    gpu.power.addUniform(uncore_w);

    // ---- DRAM stack ---------------------------------------------------
    std::vector<Layer> layers;
    layers.push_back(std::move(interposer));
    layers.push_back(std::move(gpu));
    double per_die_w = hbm_w / params_.dramDies;
    for (int d = 0; d < params_.dramDies; ++d) {
        Layer die;
        die.name = strformat("dram%d", d);
        die.thicknessM = 60e-6;
        // Effective conductivity reduced by microbump/underfill layers.
        die.conductivity = 30.0;
        die.power = PowerMap(n, n);
        die.power.addUniform(per_die_w);
        layers.push_back(std::move(die));
    }

    // ---- TIM and spreader ---------------------------------------------
    Layer tim;
    tim.name = "tim";
    tim.thicknessM = 50e-6;
    tim.conductivity = 4.0;
    tim.power = PowerMap(n, n);
    layers.push_back(std::move(tim));

    Layer spreader;
    spreader.name = "spreader";
    spreader.thicknessM = 1e-3;
    spreader.conductivity = 390.0;
    spreader.power = PowerMap(n, n);
    layers.push_back(std::move(spreader));

    ThermalGridParams gp;
    gp.widthM = params_.dieEdgeM;
    gp.depthM = params_.dieEdgeM;
    gp.ambientC = params_.ambientC;
    gp.sinkResistance = params_.sinkResistance;
    return ThermalGrid(gp, std::move(layers));
}

PackageThermalResult
EhpPackageModel::solve(const NodeConfig &cfg,
                       const PowerBreakdown &power) const
{
    ENA_SPAN("thermal", "solve_package");
    ThermalGrid grid = buildGrid(cfg, power);
    PackageThermalResult r;
    r.solverIterations = grid.solve();

    static telemetry::Counter &iters = telemetry::counter(
        "thermal.solver_iterations",
        "SOR iterations summed over all package thermal solves");
    iters.add(static_cast<std::uint64_t>(r.solverIterations));
    static telemetry::Histogram &iters_hist = telemetry::histogram(
        "thermal.solver_iterations_per_solve",
        "SOR iterations needed by one package solve", 1.0, 2.0, 20);
    iters_hist.sample(static_cast<double>(r.solverIterations));

    r.peakBottomDramC = grid.peak("dram0");
    r.peakGpuC = grid.peak("gpu");
    r.peakDramC = 0.0;
    for (int d = 0; d < params_.dramDies; ++d) {
        r.peakDramC = std::max(
            r.peakDramC, grid.peak(strformat("dram%d", d)));
    }
    for (const LayerTemps &lt : grid.temperatures()) {
        if (lt.name == "dram0")
            r.bottomDram = lt;
    }
    return r;
}

std::string
EhpPackageModel::heatMap(const NodeConfig &cfg,
                         const PowerBreakdown &power) const
{
    ThermalGrid grid = buildGrid(cfg, power);
    grid.solve();
    return grid.asciiHeatMap("dram0");
}

} // namespace ena

#include "thermal/grid.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace ena {

double
LayerTemps::peak() const
{
    return *std::max_element(t.begin(), t.end());
}

double
LayerTemps::mean() const
{
    double s = 0.0;
    for (double v : t)
        s += v;
    return s / static_cast<double>(t.size());
}

ThermalGrid::ThermalGrid(ThermalGridParams params,
                         std::vector<Layer> layers)
    : params_(params), layers_(std::move(layers))
{
    if (layers_.empty())
        ENA_FATAL("thermal grid needs at least one layer");
    nx_ = layers_.front().power.nx();
    ny_ = layers_.front().power.ny();
    for (const Layer &l : layers_) {
        if (l.power.nx() != nx_ || l.power.ny() != ny_)
            ENA_FATAL("layer '", l.name, "' grid mismatch: ",
                      l.power.nx(), "x", l.power.ny(), " vs ", nx_, "x",
                      ny_);
        if (l.thicknessM <= 0.0 || l.conductivity <= 0.0)
            ENA_FATAL("layer '", l.name, "' needs positive thickness "
                      "and conductivity");
    }
    temps_.assign(layers_.size() * nx_ * ny_, params_.ambientC);
}

size_t
ThermalGrid::idx(size_t layer, size_t x, size_t y) const
{
    return (layer * ny_ + y) * nx_ + x;
}

int
ThermalGrid::solve()
{
    const size_t nl = layers_.size();
    const double dx = params_.widthM / static_cast<double>(nx_);
    const double dy = params_.depthM / static_cast<double>(ny_);
    const double area = dx * dy;

    // Per-layer lateral conductances; per-interface vertical ones.
    std::vector<double> glx(nl);
    std::vector<double> gly(nl);
    std::vector<double> gup(nl, 0.0);   // layer l <-> l+1
    for (size_t l = 0; l < nl; ++l) {
        glx[l] = layers_[l].conductivity * layers_[l].thicknessM * dy /
                 dx;
        gly[l] = layers_[l].conductivity * layers_[l].thicknessM * dx /
                 dy;
        if (l + 1 < nl) {
            double r = layers_[l].thicknessM /
                           (2.0 * layers_[l].conductivity) +
                       layers_[l + 1].thicknessM /
                           (2.0 * layers_[l + 1].conductivity);
            gup[l] = area / r;
        }
    }
    double g_sink =
        1.0 / (params_.sinkResistance * static_cast<double>(nx_ * ny_));

    int iter = 0;
    for (; iter < params_.maxIterations; ++iter) {
        double max_delta = 0.0;
        for (size_t l = 0; l < nl; ++l) {
            const PowerMap &pm = layers_[l].power;
            for (size_t y = 0; y < ny_; ++y) {
                for (size_t x = 0; x < nx_; ++x) {
                    double num = pm.at(x, y);
                    double den = 0.0;
                    if (x > 0) {
                        num += glx[l] * temps_[idx(l, x - 1, y)];
                        den += glx[l];
                    }
                    if (x + 1 < nx_) {
                        num += glx[l] * temps_[idx(l, x + 1, y)];
                        den += glx[l];
                    }
                    if (y > 0) {
                        num += gly[l] * temps_[idx(l, x, y - 1)];
                        den += gly[l];
                    }
                    if (y + 1 < ny_) {
                        num += gly[l] * temps_[idx(l, x, y + 1)];
                        den += gly[l];
                    }
                    if (l > 0) {
                        num += gup[l - 1] * temps_[idx(l - 1, x, y)];
                        den += gup[l - 1];
                    }
                    if (l + 1 < nl) {
                        num += gup[l] * temps_[idx(l + 1, x, y)];
                        den += gup[l];
                    } else {
                        num += g_sink * params_.ambientC;
                        den += g_sink;
                    }
                    size_t i = idx(l, x, y);
                    double t_new = num / den;
                    double t_relaxed =
                        temps_[i] +
                        params_.sorOmega * (t_new - temps_[i]);
                    max_delta = std::max(max_delta,
                                         std::abs(t_relaxed - temps_[i]));
                    temps_[i] = t_relaxed;
                }
            }
        }
        if (max_delta < params_.toleranceC)
            break;
    }

    layerTemps_.clear();
    for (size_t l = 0; l < nl; ++l) {
        LayerTemps lt;
        lt.name = layers_[l].name;
        lt.nx = nx_;
        lt.ny = ny_;
        lt.t.assign(temps_.begin() + static_cast<long>(idx(l, 0, 0)),
                    temps_.begin() +
                        static_cast<long>(idx(l, 0, 0) + nx_ * ny_));
        layerTemps_.push_back(std::move(lt));
    }
    solved_ = true;
    return iter + 1;
}

double
ThermalGrid::stableDtS() const
{
    // Conservative bound: C_min / G_max over layers.
    const double dx = params_.widthM / static_cast<double>(nx_);
    const double dy = params_.depthM / static_cast<double>(ny_);
    double worst = 1e30;
    for (size_t l = 0; l < layers_.size(); ++l) {
        double cap = layers_[l].heatCapacity * dx * dy *
                     layers_[l].thicknessM;
        double glx = layers_[l].conductivity * layers_[l].thicknessM *
                     dy / dx;
        double gly = layers_[l].conductivity * layers_[l].thicknessM *
                     dx / dy;
        double gup = 0.0;
        double gdn = 0.0;
        double area = dx * dy;
        if (l + 1 < layers_.size()) {
            double r = layers_[l].thicknessM /
                           (2.0 * layers_[l].conductivity) +
                       layers_[l + 1].thicknessM /
                           (2.0 * layers_[l + 1].conductivity);
            gup = area / r;
        } else {
            gup = 1.0 / (params_.sinkResistance *
                         static_cast<double>(nx_ * ny_));
        }
        if (l > 0) {
            double r = layers_[l].thicknessM /
                           (2.0 * layers_[l].conductivity) +
                       layers_[l - 1].thicknessM /
                           (2.0 * layers_[l - 1].conductivity);
            gdn = area / r;
        }
        double gtot = 2.0 * glx + 2.0 * gly + gup + gdn;
        worst = std::min(worst, cap / gtot);
    }
    return 0.5 * worst;
}

int
ThermalGrid::stepTransient(double seconds)
{
    ENA_ASSERT(seconds > 0.0, "transient needs positive duration");
    const size_t nl = layers_.size();
    const double dx = params_.widthM / static_cast<double>(nx_);
    const double dy = params_.depthM / static_cast<double>(ny_);
    const double area = dx * dy;

    std::vector<double> glx(nl);
    std::vector<double> gly(nl);
    std::vector<double> gup(nl, 0.0);
    std::vector<double> cap(nl);
    for (size_t l = 0; l < nl; ++l) {
        glx[l] = layers_[l].conductivity * layers_[l].thicknessM * dy /
                 dx;
        gly[l] = layers_[l].conductivity * layers_[l].thicknessM * dx /
                 dy;
        cap[l] = layers_[l].heatCapacity * area * layers_[l].thicknessM;
        if (l + 1 < nl) {
            double r = layers_[l].thicknessM /
                           (2.0 * layers_[l].conductivity) +
                       layers_[l + 1].thicknessM /
                           (2.0 * layers_[l + 1].conductivity);
            gup[l] = area / r;
        }
    }
    double g_sink =
        1.0 / (params_.sinkResistance * static_cast<double>(nx_ * ny_));

    double dt = stableDtS();
    int steps = static_cast<int>(seconds / dt) + 1;
    dt = seconds / steps;

    std::vector<double> next(temps_.size());
    for (int step = 0; step < steps; ++step) {
        for (size_t l = 0; l < nl; ++l) {
            const PowerMap &pm = layers_[l].power;
            for (size_t y = 0; y < ny_; ++y) {
                for (size_t x = 0; x < nx_; ++x) {
                    size_t i = idx(l, x, y);
                    double t = temps_[i];
                    double q = pm.at(x, y);
                    if (x > 0)
                        q += glx[l] * (temps_[idx(l, x - 1, y)] - t);
                    if (x + 1 < nx_)
                        q += glx[l] * (temps_[idx(l, x + 1, y)] - t);
                    if (y > 0)
                        q += gly[l] * (temps_[idx(l, x, y - 1)] - t);
                    if (y + 1 < ny_)
                        q += gly[l] * (temps_[idx(l, x, y + 1)] - t);
                    if (l > 0)
                        q += gup[l - 1] *
                             (temps_[idx(l - 1, x, y)] - t);
                    if (l + 1 < nl) {
                        q += gup[l] * (temps_[idx(l + 1, x, y)] - t);
                    } else {
                        q += g_sink * (params_.ambientC - t);
                    }
                    next[i] = t + dt * q / cap[l];
                }
            }
        }
        temps_.swap(next);
    }

    layerTemps_.clear();
    for (size_t l = 0; l < nl; ++l) {
        LayerTemps lt;
        lt.name = layers_[l].name;
        lt.nx = nx_;
        lt.ny = ny_;
        lt.t.assign(temps_.begin() + static_cast<long>(idx(l, 0, 0)),
                    temps_.begin() +
                        static_cast<long>(idx(l, 0, 0) + nx_ * ny_));
        layerTemps_.push_back(std::move(lt));
    }
    solved_ = true;
    return steps;
}

const std::vector<LayerTemps> &
ThermalGrid::temperatures() const
{
    ENA_ASSERT(solved_, "temperatures() before solve()");
    return layerTemps_;
}

double
ThermalGrid::peak(const std::string &layer_name) const
{
    ENA_ASSERT(solved_, "peak() before solve()");
    for (const LayerTemps &lt : layerTemps_) {
        if (lt.name == layer_name)
            return lt.peak();
    }
    ENA_FATAL("no thermal layer named '", layer_name, "'");
}

std::string
ThermalGrid::asciiHeatMap(const std::string &layer_name, int levels) const
{
    ENA_ASSERT(solved_, "asciiHeatMap() before solve()");
    ENA_ASSERT(levels >= 2 && levels <= 10, "levels must be 2..10");
    const LayerTemps *lt = nullptr;
    for (const LayerTemps &cand : layerTemps_) {
        if (cand.name == layer_name)
            lt = &cand;
    }
    if (!lt)
        ENA_FATAL("no thermal layer named '", layer_name, "'");

    double lo = *std::min_element(lt->t.begin(), lt->t.end());
    double hi = lt->peak();
    double span = std::max(hi - lo, 1e-9);
    static const char *glyphs = " .:-=+*#%@";

    std::ostringstream os;
    for (size_t y = 0; y < lt->ny; ++y) {
        for (size_t x = 0; x < lt->nx; ++x) {
            double u = (lt->at(x, y) - lo) / span;
            int g = std::min(levels - 1,
                             static_cast<int>(u * levels));
            os << glyphs[g];
        }
        os << "\n";
    }
    os << "range " << lo << " .. " << hi << " C\n";
    return os.str();
}

} // namespace ena

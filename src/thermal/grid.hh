/**
 * @file
 * Steady-state 3D thermal conduction solver (HotSpot-class compact
 * model, paper Section V-D).
 *
 * The die stack is a list of layers, each an nx x ny lateral grid with a
 * thickness, thermal conductivity, and power map. Cells conduct
 * laterally within a layer and vertically between adjacent layers
 * (series resistance of the two half-thicknesses). The top layer sees a
 * convective boundary (heat sink) to ambient; other outer faces are
 * adiabatic. Solved with successive over-relaxation.
 */

#ifndef ENA_THERMAL_GRID_HH
#define ENA_THERMAL_GRID_HH

#include <string>
#include <vector>

#include "thermal/power_map.hh"

namespace ena {

/** One physical layer of the stack, bottom-up order. */
struct Layer
{
    std::string name;
    double thicknessM = 100e-6;     ///< meters
    double conductivity = 120.0;    ///< W/(m K); silicon ~ 110-150
    /** Volumetric heat capacity, J/(m^3 K); silicon ~ 1.66e6. */
    double heatCapacity = 1.66e6;
    PowerMap power;                 ///< dissipation per cell (W)
};

struct ThermalGridParams
{
    double widthM = 0.015;          ///< lateral extent (x)
    double depthM = 0.015;          ///< lateral extent (y)
    double ambientC = 50.0;         ///< 2U-chassis inlet (paper V-D)
    /** Heat-sink thermal resistance from the top layer to ambient
     *  (K/W), high-end air cooling. */
    double sinkResistance = 0.9;
    double sorOmega = 1.8;
    double toleranceC = 1e-4;
    int maxIterations = 20000;
};

/** Solved temperature field of one layer. */
struct LayerTemps
{
    std::string name;
    size_t nx = 0;
    size_t ny = 0;
    std::vector<double> t;          ///< degrees C, row-major

    double at(size_t x, size_t y) const { return t[y * nx + x]; }
    double peak() const;
    double mean() const;
};

class ThermalGrid
{
  public:
    ThermalGrid(ThermalGridParams params, std::vector<Layer> layers);

    /** Run SOR to convergence; returns iterations used. */
    int solve();

    /**
     * Advance the transient solution by @p seconds with explicit Euler
     * steps of at most the stability limit (power maps and boundary
     * held constant). Starts from the current field (ambient initially,
     * or the last solve()/step result). Returns the steps taken.
     */
    int stepTransient(double seconds);

    /**
     * Largest stable explicit time step (min over cells of
     * capacitance / total conductance).
     */
    double stableDtS() const;

    /** Per-layer temperatures (solve() must have been called). */
    const std::vector<LayerTemps> &temperatures() const;

    /** Peak temperature across a named layer; fatal() if unknown. */
    double peak(const std::string &layer_name) const;

    /** Render one layer as an ASCII heat map (for Fig. 11). */
    std::string asciiHeatMap(const std::string &layer_name,
                             int levels = 10) const;

    size_t numLayers() const { return layers_.size(); }
    const ThermalGridParams &params() const { return params_; }

  private:
    size_t idx(size_t layer, size_t x, size_t y) const;

    ThermalGridParams params_;
    std::vector<Layer> layers_;
    size_t nx_ = 0;
    size_t ny_ = 0;
    bool solved_ = false;
    std::vector<double> temps_;     ///< flattened (layer, y, x)
    std::vector<LayerTemps> layerTemps_;
};

} // namespace ena

#endif // ENA_THERMAL_GRID_HH

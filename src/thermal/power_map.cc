#include "thermal/power_map.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ena {

PowerMap::PowerMap(size_t nx, size_t ny)
    : nx_(nx), ny_(ny), cells_(nx * ny, 0.0)
{
    ENA_ASSERT(nx > 0 && ny > 0, "empty power map");
}

size_t
PowerMap::idx(size_t x, size_t y) const
{
    ENA_ASSERT(x < nx_ && y < ny_, "power-map index (", x, ",", y,
               ") out of ", nx_, "x", ny_);
    return y * nx_ + x;
}

void
PowerMap::addUniform(double watts)
{
    double per = watts / static_cast<double>(cells_.size());
    for (double &c : cells_)
        c += per;
}

void
PowerMap::addRect(size_t x0, size_t y0, size_t w, size_t h, double watts)
{
    ENA_ASSERT(w > 0 && h > 0, "empty rect");
    ENA_ASSERT(x0 + w <= nx_ && y0 + h <= ny_, "rect (", x0, ",", y0,
               ")+", w, "x", h, " exceeds map ", nx_, "x", ny_);
    double per = watts / static_cast<double>(w * h);
    for (size_t y = y0; y < y0 + h; ++y) {
        for (size_t x = x0; x < x0 + w; ++x)
            cells_[y * nx_ + x] += per;
    }
}

double
PowerMap::totalWatts() const
{
    double s = 0.0;
    for (double c : cells_)
        s += c;
    return s;
}

double
PowerMap::maxCell() const
{
    return *std::max_element(cells_.begin(), cells_.end());
}

} // namespace ena

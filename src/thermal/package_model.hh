/**
 * @file
 * EHP package thermal model (paper Section V-D, Figs. 10-11).
 *
 * Models the hottest column of the package: one GPU chiplet with its
 * 8-die 3D DRAM stack directly above, on an active interposer, capped by
 * TIM, a copper spreader, and an air-cooled sink. Per-chiplet power is
 * one eighth of the node's GPU-side breakdown; CU power concentrates in
 * an array of CU tiles (giving the Fig. 11 hot spots in the bottom DRAM
 * die), DRAM power spreads across the stack's dies.
 */

#ifndef ENA_THERMAL_PACKAGE_MODEL_HH
#define ENA_THERMAL_PACKAGE_MODEL_HH

#include <string>

#include "common/node_config.hh"
#include "power/node_power.hh"
#include "thermal/grid.hh"

namespace ena {

struct PackageThermalParams
{
    size_t gridN = 32;              ///< lateral resolution (N x N)
    double dieEdgeM = 0.015;        ///< chiplet/stack edge length
    double ambientC = 50.0;
    /** Per-column sink resistance (high-end air cooling shared by the
     *  whole package; one column sees ~8x the package resistance). */
    double sinkResistance = 1.8;
    int dramDies = 8;
    /** CU tile grid on the GPU die: cols x rows tile slots. */
    int tileCols = 8;
    int tileRows = 6;
};

struct PackageThermalResult
{
    double peakDramC = 0.0;     ///< hottest cell across all DRAM dies
    double peakBottomDramC = 0.0;
    double peakGpuC = 0.0;
    int solverIterations = 0;
    LayerTemps bottomDram;      ///< the Fig. 11 die
};

class EhpPackageModel
{
  public:
    explicit EhpPackageModel(PackageThermalParams params = {});

    /**
     * Solve the package column for one configuration's power breakdown.
     * The DRAM limit check (85 C) is the caller's concern.
     */
    PackageThermalResult solve(const NodeConfig &cfg,
                               const PowerBreakdown &power) const;

    /** ASCII rendering of the bottom DRAM die (Fig. 11). */
    std::string heatMap(const NodeConfig &cfg,
                        const PowerBreakdown &power) const;

    const PackageThermalParams &params() const { return params_; }

    /** JEDEC refresh-doubling limit the paper checks against. */
    static constexpr double dramLimitC = 85.0;

  private:
    ThermalGrid buildGrid(const NodeConfig &cfg,
                          const PowerBreakdown &power) const;

    PackageThermalParams params_;
};

} // namespace ena

#endif // ENA_THERMAL_PACKAGE_MODEL_HH

/**
 * @file
 * Lateral power-density maps for thermal-grid layers.
 *
 * A PowerMap is an nx x ny grid of per-cell dissipation (W). Builders
 * support uniform fills and rectangular tiles (CU arrays, L2 slices),
 * which is how the EHP chiplet floorplans are expressed.
 */

#ifndef ENA_THERMAL_POWER_MAP_HH
#define ENA_THERMAL_POWER_MAP_HH

#include <cstddef>
#include <vector>

namespace ena {

class PowerMap
{
  public:
    /** Default: a 1x1 zero map (placeholder until assigned). */
    PowerMap() : PowerMap(1, 1) {}

    PowerMap(size_t nx, size_t ny);

    size_t nx() const { return nx_; }
    size_t ny() const { return ny_; }

    double at(size_t x, size_t y) const { return cells_[idx(x, y)]; }
    void set(size_t x, size_t y, double w) { cells_[idx(x, y)] = w; }
    void add(size_t x, size_t y, double w) { cells_[idx(x, y)] += w; }

    /** Spread @p watts uniformly over the whole layer. */
    void addUniform(double watts);

    /**
     * Spread @p watts uniformly over the cell rectangle
     * [x0, x0+w) x [y0, y0+h).
     */
    void addRect(size_t x0, size_t y0, size_t w, size_t h, double watts);

    /** Sum over all cells. */
    double totalWatts() const;

    double maxCell() const;

    const std::vector<double> &cells() const { return cells_; }

  private:
    size_t idx(size_t x, size_t y) const;

    size_t nx_;
    size_t ny_;
    std::vector<double> cells_;
};

} // namespace ena

#endif // ENA_THERMAL_POWER_MAP_HH

/**
 * @file
 * Central calibration constants for the analytic models.
 *
 * Every tunable that anchors the reproduction to the paper's reported
 * numbers lives here, with the anchor it serves. Tests in
 * tests/core/test_calibration.cc pin the resulting headline numbers
 * (18.6 TF @ 320 CUs, ~11.1 MW peak-compute, best-mean config, ...), so
 * a change here that breaks an anchor fails loudly.
 */

#ifndef ENA_COMMON_CALIBRATION_HH
#define ENA_COMMON_CALIBRATION_HH

namespace ena {
namespace cal {

// ---------------------------------------------------------------------
// Compute throughput.
// Anchor: "each [32-CU] chiplet is projected to provide two teraflops of
// double-precision computation" -> 64 DP flops per CU per clock at 1 GHz.
// ---------------------------------------------------------------------
constexpr double flopsPerCuClk = 64.0;

// ---------------------------------------------------------------------
// Voltage/frequency curve (GPU domain). V(f) = vfBase + vfSlope * f_GHz,
// nominal point 0.8 V at 1.0 GHz. Exascale-timeframe FinFET projection.
// ---------------------------------------------------------------------
constexpr double vfBase = 0.5;       // volts
constexpr double vfSlope = 0.2;      // volts per GHz
constexpr double vNominal = 0.7;     // volts (at 1 GHz)
constexpr double fMinGhz = 0.5;
constexpr double fMaxGhz = 1.6;

// Near-threshold computing: voltage reduction at/below 1 GHz, fading to
// zero by 1.4 GHz (paper: NTC sustains up to 1 GHz; ~14% average system
// savings).
constexpr double ntcDropVolts = 0.13;
constexpr double ntcFullDropGhz = 1.0;
constexpr double ntcZeroDropGhz = 1.3;

// ---------------------------------------------------------------------
// GPU power.
// Anchor chain: the MaxFlops peak-compute scenario must come out near
// 11.1 MW at 100k nodes (Fig. 14) at 320 CUs / 1 GHz / 1 TB/s, and the
// 160 W node budget must bind MaxFlops at ~320 CUs / 1 GHz / 3 TB/s
// (best-mean) and ~384 CUs / 925 MHz / 1 TB/s (Table II).
// ---------------------------------------------------------------------
constexpr double cuDynWPerGhz = 0.245;   // W per CU per GHz at Vnominal
constexpr double cuLeakW = 0.022;       // W per CU at Vnominal

// ---------------------------------------------------------------------
// In-package (3D-stacked) DRAM power.
// ---------------------------------------------------------------------
constexpr double hbmStackStaticW = 0.35;   // per stack (8 stacks)
// Superlinear provisioning cost: pushing past a few TB/s needs taller
// stacks / faster I/O whose always-on power grows steeply (the paper:
// "provisioning higher bandwidth ... simply takes power away from the
// compute resources"). P_static = coef * bw^exp.
constexpr double hbmBwStaticCoef = 0.517;  // W at 1 TB/s
constexpr double hbmBwStaticExp = 3.3;
constexpr double hbmPjPerByte = 2.0;       // access+IO energy

// ---------------------------------------------------------------------
// Interposer NoC power. Dynamic energy covers the LLC<->memory and
// chiplet<->chiplet hops; compression (Sec. V-E) applies to the
// LLC<->memory share of this traffic.
// ---------------------------------------------------------------------
constexpr double nocStaticW = 3.0;
constexpr double nocRouterShare = 0.45;    // of NoC dynamic energy
constexpr double nocPjPerByte = 2.0;
constexpr double nocLlcMemShare = 0.80;    // compressible share

// ---------------------------------------------------------------------
// CPU cluster and system overheads (I/O, VRs, management).
// ---------------------------------------------------------------------
constexpr double cpuStaticW = 4.5;
constexpr double cpuMaxDynW = 10.0;
constexpr double sysStaticW = 7.5;

// ---------------------------------------------------------------------
// External memory network.
// Anchors: 27 W DRAM static/refresh for the 768 GB DRAM-only baseline;
// 10 W SerDes background; hybrid config cuts external static power in
// half; external power (static+dynamic) spans ~40-70 W across kernels;
// three memory-heavy apps roughly double total power with NVM.
// ---------------------------------------------------------------------
constexpr double extDramStaticWPerGb = 27.0 / 768.0;
constexpr double extNvmStaticWPerGb = 0.004;
constexpr double serdesLinkStaticW = 10.0 / 12.0;  // per chained module
constexpr double extDramPjPerByte = 24.0;          // ~3 pJ/bit
constexpr double serdesPjPerByte = 10.0;           // ~1.25 pJ/bit
constexpr double nvmReadPjPerByte = 160.0;         // ~20 pJ/bit
constexpr double nvmWritePjPerByte = 960.0;        // ~120 pJ/bit

// ---------------------------------------------------------------------
// Power-optimization effect sizes (paper Section V-E mean savings:
// NTC 14%, async CUs 4.3%, async routers 3.0%, LP links 1.6%,
// compression 1.7%; combined 13-27%).
// ---------------------------------------------------------------------
constexpr double asyncCuDynFactor = 0.88;     // CU dynamic reduction
constexpr double asyncRouterDynFactor = 0.35; // router dynamic reduction
constexpr double asyncRouterStaticFactor = 0.60;
constexpr double lpLinkDynFactor = 0.55;      // link dynamic reduction
constexpr double linkShareOfNoc = 1.0 - nocRouterShare;

// ---------------------------------------------------------------------
// Design-space exploration.
// ---------------------------------------------------------------------
constexpr double nodePowerBudgetW = 160.0;
constexpr int maxCusPerNode = 384;            // area budget (Sec. VI)
constexpr int numSystemNodes = 100000;

// Contention saturation: the worst-case slowdown of the in-package
// memory system under thrash (Figs. 4-6 extreme ops-per-byte points).
constexpr double maxContentionFactor = 3.0;

// ---------------------------------------------------------------------
// Two-level memory performance (Fig. 8).
// ---------------------------------------------------------------------
constexpr double extMemLatencyNs = 180.0;  // extra latency vs in-package
constexpr double inPkgLatencyNs = 90.0;
constexpr double memAccessBytes = 64.0;

// ---------------------------------------------------------------------
// Exascale projection sanity targets (used by tests, not by models).
// ---------------------------------------------------------------------
constexpr double targetNodeTeraflops = 18.6;
constexpr double targetSystemMw = 11.1;

} // namespace cal
} // namespace ena

#endif // ENA_COMMON_CALIBRATION_HH

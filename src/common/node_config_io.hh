/**
 * @file
 * Config-file bindings for NodeConfig: load a node description from a
 * "key = value" Config so examples/tools can be driven by files rather
 * than code. Unknown keys are rejected to catch typos.
 *
 * Recognized keys (all optional; defaults = NodeConfig{}):
 *
 *   ehp.cus, ehp.freq_ghz, ehp.bw_tbs, ehp.gpu_chiplets,
 *   ehp.cpu_chiplets, ehp.cores_per_cpu_chiplet, ehp.in_package_gb,
 *   extmem.dram_gb, extmem.nvm_gb, extmem.dram_module_gb,
 *   extmem.nvm_module_gb, extmem.interfaces, extmem.interface_gbs,
 *   opts.ntc, opts.async_cu, opts.async_router, opts.lp_links,
 *   opts.compression
 *
 * "cluster." keys are ignored here: they describe the scale-out layer
 * and are parsed by clusterConfigFromConfig (src/cluster/), so a single
 * file can describe the node and the machine around it.
 *
 * tryNodeConfigFromConfig is the recoverable entry point (errors carry
 * the offending key and its source:line origin); nodeConfigFromConfig
 * is the legacy fatal() wrapper.
 */

#ifndef ENA_COMMON_NODE_CONFIG_IO_HH
#define ENA_COMMON_NODE_CONFIG_IO_HH

#include "common/node_config.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace ena {

inline Expected<NodeConfig>
tryNodeConfigFromConfig(const Config &cfg)
{
    static const char *known[] = {
        "ehp.cus", "ehp.freq_ghz", "ehp.bw_tbs", "ehp.gpu_chiplets",
        "ehp.cpu_chiplets", "ehp.cores_per_cpu_chiplet",
        "ehp.in_package_gb", "extmem.dram_gb", "extmem.nvm_gb",
        "extmem.dram_module_gb", "extmem.nvm_module_gb",
        "extmem.interfaces", "extmem.interface_gbs", "opts.ntc",
        "opts.async_cu", "opts.async_router", "opts.lp_links",
        "opts.compression",
    };
    for (const std::string &key : cfg.keysWithPrefix("")) {
        // "cluster." keys describe the scale-out layer and are owned by
        // clusterConfigFromConfig (src/cluster/cluster_config_io.hh);
        // "taskgraph." keys describe the workload DAG and are owned by
        // taskGraphSpecFromConfig (src/taskgraph/task_dag_io.hh). One
        // file can hold a full machine + workload description.
        if (key.rfind("cluster.", 0) == 0 ||
            key.rfind("taskgraph.", 0) == 0)
            continue;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok) {
            std::string where = cfg.origin(key);
            return Status::invalidArgument(
                "unknown node-config key '", key, "'",
                where.empty() ? "" : " (" + where + ")");
        }
    }

    NodeConfig n;
    ENA_ASSIGN_OR_RETURN(long long cus, cfg.tryGetInt("ehp.cus", n.cus));
    n.cus = static_cast<int>(cus);
    ENA_ASSIGN_OR_RETURN(n.freqGhz,
                         cfg.tryGetDouble("ehp.freq_ghz", n.freqGhz));
    ENA_ASSIGN_OR_RETURN(n.bwTbs,
                         cfg.tryGetDouble("ehp.bw_tbs", n.bwTbs));
    ENA_ASSIGN_OR_RETURN(
        long long gpu_chiplets,
        cfg.tryGetInt("ehp.gpu_chiplets", n.gpuChiplets));
    n.gpuChiplets = static_cast<int>(gpu_chiplets);
    ENA_ASSIGN_OR_RETURN(
        long long cpu_chiplets,
        cfg.tryGetInt("ehp.cpu_chiplets", n.cpuChiplets));
    n.cpuChiplets = static_cast<int>(cpu_chiplets);
    ENA_ASSIGN_OR_RETURN(
        long long cores,
        cfg.tryGetInt("ehp.cores_per_cpu_chiplet", n.coresPerCpuChiplet));
    n.coresPerCpuChiplet = static_cast<int>(cores);
    ENA_ASSIGN_OR_RETURN(
        n.inPackageGb,
        cfg.tryGetDouble("ehp.in_package_gb", n.inPackageGb));

    ENA_ASSIGN_OR_RETURN(
        n.ext.dramGb, cfg.tryGetDouble("extmem.dram_gb", n.ext.dramGb));
    ENA_ASSIGN_OR_RETURN(
        n.ext.nvmGb, cfg.tryGetDouble("extmem.nvm_gb", n.ext.nvmGb));
    ENA_ASSIGN_OR_RETURN(
        n.ext.dramModuleGb,
        cfg.tryGetDouble("extmem.dram_module_gb", n.ext.dramModuleGb));
    ENA_ASSIGN_OR_RETURN(
        n.ext.nvmModuleGb,
        cfg.tryGetDouble("extmem.nvm_module_gb", n.ext.nvmModuleGb));
    ENA_ASSIGN_OR_RETURN(
        long long interfaces,
        cfg.tryGetInt("extmem.interfaces", n.ext.interfaces));
    n.ext.interfaces = static_cast<int>(interfaces);
    ENA_ASSIGN_OR_RETURN(
        n.ext.interfaceGbs,
        cfg.tryGetDouble("extmem.interface_gbs", n.ext.interfaceGbs));

    ENA_ASSIGN_OR_RETURN(n.opts.ntc,
                         cfg.tryGetBool("opts.ntc", n.opts.ntc));
    ENA_ASSIGN_OR_RETURN(
        n.opts.asyncCu, cfg.tryGetBool("opts.async_cu", n.opts.asyncCu));
    ENA_ASSIGN_OR_RETURN(
        n.opts.asyncRouter,
        cfg.tryGetBool("opts.async_router", n.opts.asyncRouter));
    ENA_ASSIGN_OR_RETURN(
        n.opts.lpLinks, cfg.tryGetBool("opts.lp_links", n.opts.lpLinks));
    ENA_ASSIGN_OR_RETURN(
        n.opts.compression,
        cfg.tryGetBool("opts.compression", n.opts.compression));

    ENA_TRY(n.tryValidate());
    return n;
}

/** Legacy flavor: fatal() with the chained diagnostic on any error. */
inline NodeConfig
nodeConfigFromConfig(const Config &cfg)
{
    return unwrapOrFatal(
        tryNodeConfigFromConfig(cfg).withContext("loading node config"));
}

/** Serialize a NodeConfig back into a Config. */
inline Config
nodeConfigToConfig(const NodeConfig &n)
{
    Config cfg;
    cfg.set("ehp.cus", n.cus);
    cfg.set("ehp.freq_ghz", n.freqGhz);
    cfg.set("ehp.bw_tbs", n.bwTbs);
    cfg.set("ehp.gpu_chiplets", n.gpuChiplets);
    cfg.set("ehp.cpu_chiplets", n.cpuChiplets);
    cfg.set("ehp.cores_per_cpu_chiplet", n.coresPerCpuChiplet);
    cfg.set("ehp.in_package_gb", n.inPackageGb);
    cfg.set("extmem.dram_gb", n.ext.dramGb);
    cfg.set("extmem.nvm_gb", n.ext.nvmGb);
    cfg.set("extmem.dram_module_gb", n.ext.dramModuleGb);
    cfg.set("extmem.nvm_module_gb", n.ext.nvmModuleGb);
    cfg.set("extmem.interfaces", n.ext.interfaces);
    cfg.set("extmem.interface_gbs", n.ext.interfaceGbs);
    cfg.set("opts.ntc", n.opts.ntc);
    cfg.set("opts.async_cu", n.opts.asyncCu);
    cfg.set("opts.async_router", n.opts.asyncRouter);
    cfg.set("opts.lp_links", n.opts.lpLinks);
    cfg.set("opts.compression", n.opts.compression);
    return cfg;
}

} // namespace ena

#endif // ENA_COMMON_NODE_CONFIG_IO_HH

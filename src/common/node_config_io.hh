/**
 * @file
 * Config-file bindings for NodeConfig: load a node description from a
 * "key = value" Config so examples/tools can be driven by files rather
 * than code. Unknown keys are rejected to catch typos.
 *
 * Recognized keys (all optional; defaults = NodeConfig{}):
 *
 *   ehp.cus, ehp.freq_ghz, ehp.bw_tbs, ehp.gpu_chiplets,
 *   ehp.cpu_chiplets, ehp.cores_per_cpu_chiplet, ehp.in_package_gb,
 *   extmem.dram_gb, extmem.nvm_gb, extmem.dram_module_gb,
 *   extmem.nvm_module_gb, extmem.interfaces, extmem.interface_gbs,
 *   opts.ntc, opts.async_cu, opts.async_router, opts.lp_links,
 *   opts.compression
 *
 * "cluster." keys are ignored here: they describe the scale-out layer
 * and are parsed by clusterConfigFromConfig (src/cluster/), so a single
 * file can describe the node and the machine around it.
 */

#ifndef ENA_COMMON_NODE_CONFIG_IO_HH
#define ENA_COMMON_NODE_CONFIG_IO_HH

#include "common/node_config.hh"
#include "util/config.hh"

namespace ena {

inline NodeConfig
nodeConfigFromConfig(const Config &cfg)
{
    static const char *known[] = {
        "ehp.cus", "ehp.freq_ghz", "ehp.bw_tbs", "ehp.gpu_chiplets",
        "ehp.cpu_chiplets", "ehp.cores_per_cpu_chiplet",
        "ehp.in_package_gb", "extmem.dram_gb", "extmem.nvm_gb",
        "extmem.dram_module_gb", "extmem.nvm_module_gb",
        "extmem.interfaces", "extmem.interface_gbs", "opts.ntc",
        "opts.async_cu", "opts.async_router", "opts.lp_links",
        "opts.compression",
    };
    for (const std::string &key : cfg.keysWithPrefix("")) {
        // "cluster." keys describe the scale-out layer and are owned by
        // clusterConfigFromConfig (src/cluster/cluster_config_io.hh), so
        // one file can hold a full machine description.
        if (key.rfind("cluster.", 0) == 0)
            continue;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            ENA_FATAL("unknown node-config key '", key, "'");
    }

    NodeConfig n;
    n.cus = static_cast<int>(cfg.getInt("ehp.cus", n.cus));
    n.freqGhz = cfg.getDouble("ehp.freq_ghz", n.freqGhz);
    n.bwTbs = cfg.getDouble("ehp.bw_tbs", n.bwTbs);
    n.gpuChiplets =
        static_cast<int>(cfg.getInt("ehp.gpu_chiplets", n.gpuChiplets));
    n.cpuChiplets =
        static_cast<int>(cfg.getInt("ehp.cpu_chiplets", n.cpuChiplets));
    n.coresPerCpuChiplet = static_cast<int>(
        cfg.getInt("ehp.cores_per_cpu_chiplet", n.coresPerCpuChiplet));
    n.inPackageGb = cfg.getDouble("ehp.in_package_gb", n.inPackageGb);

    n.ext.dramGb = cfg.getDouble("extmem.dram_gb", n.ext.dramGb);
    n.ext.nvmGb = cfg.getDouble("extmem.nvm_gb", n.ext.nvmGb);
    n.ext.dramModuleGb =
        cfg.getDouble("extmem.dram_module_gb", n.ext.dramModuleGb);
    n.ext.nvmModuleGb =
        cfg.getDouble("extmem.nvm_module_gb", n.ext.nvmModuleGb);
    n.ext.interfaces = static_cast<int>(
        cfg.getInt("extmem.interfaces", n.ext.interfaces));
    n.ext.interfaceGbs =
        cfg.getDouble("extmem.interface_gbs", n.ext.interfaceGbs);

    n.opts.ntc = cfg.getBool("opts.ntc", n.opts.ntc);
    n.opts.asyncCu = cfg.getBool("opts.async_cu", n.opts.asyncCu);
    n.opts.asyncRouter =
        cfg.getBool("opts.async_router", n.opts.asyncRouter);
    n.opts.lpLinks = cfg.getBool("opts.lp_links", n.opts.lpLinks);
    n.opts.compression =
        cfg.getBool("opts.compression", n.opts.compression);

    n.validate();
    return n;
}

/** Serialize a NodeConfig back into a Config. */
inline Config
nodeConfigToConfig(const NodeConfig &n)
{
    Config cfg;
    cfg.set("ehp.cus", n.cus);
    cfg.set("ehp.freq_ghz", n.freqGhz);
    cfg.set("ehp.bw_tbs", n.bwTbs);
    cfg.set("ehp.gpu_chiplets", n.gpuChiplets);
    cfg.set("ehp.cpu_chiplets", n.cpuChiplets);
    cfg.set("ehp.cores_per_cpu_chiplet", n.coresPerCpuChiplet);
    cfg.set("ehp.in_package_gb", n.inPackageGb);
    cfg.set("extmem.dram_gb", n.ext.dramGb);
    cfg.set("extmem.nvm_gb", n.ext.nvmGb);
    cfg.set("extmem.dram_module_gb", n.ext.dramModuleGb);
    cfg.set("extmem.nvm_module_gb", n.ext.nvmModuleGb);
    cfg.set("extmem.interfaces", n.ext.interfaces);
    cfg.set("extmem.interface_gbs", n.ext.interfaceGbs);
    cfg.set("opts.ntc", n.opts.ntc);
    cfg.set("opts.async_cu", n.opts.asyncCu);
    cfg.set("opts.async_router", n.opts.asyncRouter);
    cfg.set("opts.lp_links", n.opts.lpLinks);
    cfg.set("opts.compression", n.opts.compression);
    return cfg;
}

} // namespace ena

#endif // ENA_COMMON_NODE_CONFIG_IO_HH

/**
 * @file
 * Hardware configuration of one Exascale Node Architecture (ENA) node.
 *
 * The design space explored by the paper varies three knobs — total GPU
 * CU count, GPU frequency, and in-package memory bandwidth — on top of a
 * fixed EHP organization (8 GPU chiplets, 8 CPU chiplets, one 3D DRAM
 * stack per GPU chiplet) and a configurable external-memory network.
 */

#ifndef ENA_COMMON_NODE_CONFIG_HH
#define ENA_COMMON_NODE_CONFIG_HH

#include <string>

#include "util/logging.hh"
#include "util/status.hh"
#include "util/string_utils.hh"

namespace ena {

/** Which power-saving techniques are enabled (paper Section V-E). */
struct PowerOptConfig
{
    bool ntc = false;          ///< near-threshold computing on the CUs
    bool asyncCu = false;      ///< asynchronous ALUs/crossbars in CUs
    bool asyncRouter = false;  ///< asynchronous interconnect routers
    bool lpLinks = false;      ///< low-power on-chip link mode
    bool compression = false;  ///< LLC<->memory DRAM-traffic compression

    /** All techniques enabled (the paper's "All" bar). */
    static PowerOptConfig
    all()
    {
        return {true, true, true, true, true};
    }

    /** No techniques enabled (baseline; DVFS is always included). */
    static PowerOptConfig none() { return {}; }

    bool
    any() const
    {
        return ntc || asyncCu || asyncRouter || lpLinks || compression;
    }
};

/** External-memory network configuration (Section II-B2). */
struct ExtMemConfig
{
    double dramGb = 768.0;         ///< external DRAM capacity
    double nvmGb = 0.0;            ///< external NVM capacity
    double dramModuleGb = 64.0;    ///< capacity per DRAM module
    double nvmModuleGb = 256.0;    ///< capacity per NVM module (4x DRAM)
    int interfaces = 8;            ///< EHP external-memory interfaces
    double interfaceGbs = 100.0;   ///< peak bandwidth per interface

    /** DRAM-only baseline: 768 GB external DRAM (1 TB node total). */
    static ExtMemConfig dramOnly() { return {}; }

    /**
     * Hybrid configuration from Section V-C: half the external DRAM
     * replaced by NVM at the same total capacity.
     */
    static ExtMemConfig
    hybrid()
    {
        ExtMemConfig c;
        c.dramGb = 384.0;
        c.nvmGb = 384.0;
        return c;
    }

    double totalGb() const { return dramGb + nvmGb; }
    double aggregateGbs() const { return interfaces * interfaceGbs; }

    int
    dramModules() const
    {
        return static_cast<int>((dramGb + dramModuleGb - 1) / dramModuleGb);
    }

    int
    nvmModules() const
    {
        return nvmGb <= 0.0
                   ? 0
                   : static_cast<int>((nvmGb + nvmModuleGb - 1) /
                                      nvmModuleGb);
    }

    /** Point-to-point SerDes link count (one per chained module). */
    int totalModules() const { return dramModules() + nvmModules(); }
};

/** One ENA node's hardware configuration. */
struct NodeConfig
{
    // --- the three DSE knobs ---
    int cus = 320;              ///< total GPU compute units
    double freqGhz = 1.0;       ///< GPU frequency
    double bwTbs = 3.0;         ///< aggregate in-package DRAM bandwidth

    // --- fixed EHP organization ---
    int gpuChiplets = 8;
    int cpuChiplets = 8;
    int coresPerCpuChiplet = 4;
    double inPackageGb = 256.0; ///< 8 stacks x 32 GB

    ExtMemConfig ext;
    PowerOptConfig opts;

    /** CUs per GPU chiplet (need not be the nominal 32 during sweeps). */
    double
    cusPerChiplet() const
    {
        return static_cast<double>(cus) / gpuChiplets;
    }

    int cpuCores() const { return cpuChiplets * coresPerCpuChiplet; }

    /** The paper's ops-per-byte x-axis: CU-GHz per GB/s. */
    double
    opsPerByte() const
    {
        return cus * freqGhz / (bwTbs * 1000.0);
    }

    /** Sanity-check ranges; the error names the offending knob. */
    Status
    tryValidate() const
    {
        if (cus <= 0 || cus > 4096)
            return Status::outOfRange("NodeConfig: bad CU count ", cus);
        if (freqGhz <= 0.0 || freqGhz > 10.0) {
            return Status::outOfRange("NodeConfig: bad GPU frequency ",
                                      freqGhz, " GHz");
        }
        if (bwTbs <= 0.0 || bwTbs > 100.0) {
            return Status::outOfRange("NodeConfig: bad bandwidth ",
                                      bwTbs, " TB/s");
        }
        if (gpuChiplets <= 0 || cpuChiplets < 0)
            return Status::outOfRange("NodeConfig: bad chiplet counts");
        return Status();
    }

    /** Legacy flavor: fatal() on nonsense. */
    void validate() const { checkOrFatal(tryValidate()); }

    /** Short "320cu@1.00GHz/3.0TBps" label for tables. */
    std::string
    label() const
    {
        return strformat("%dcu@%.2fGHz/%.1fTBps", cus, freqGhz, bwTbs);
    }

    /** Paper Section V baseline: best-mean config 320 / 1 GHz / 3 TB/s. */
    static NodeConfig bestMean() { return {}; }
};

} // namespace ena

#endif // ENA_COMMON_NODE_CONFIG_HH

/**
 * @file
 * Activity vector: how hard one application drives each node component.
 *
 * Produced by the analytic performance model (core::PerfModel) for a
 * given (NodeConfig, KernelProfile) pair and consumed by the power model
 * — the same split the paper uses between its performance-scaling models
 * and its power models.
 */

#ifndef ENA_COMMON_ACTIVITY_HH
#define ENA_COMMON_ACTIVITY_HH

namespace ena {

struct Activity
{
    /** Achieved fraction of peak GPU flops (0..1). */
    double cuUtilization = 0.0;

    /** Dynamic CU activity when stalled (clock/idle overhead, 0..1). */
    double cuIdleActivity = 0.3;

    /** Achieved in-package DRAM traffic (GB/s). */
    double inPkgTrafficGbs = 0.0;

    /** Achieved external-memory traffic through the SerDes (GB/s). */
    double extTrafficGbs = 0.0;

    /** Chiplet-interconnect traffic (GB/s), includes coherence. */
    double nocTrafficGbs = 0.0;

    /** Store fraction of external accesses (drives NVM write energy). */
    double writeFraction = 0.3;

    /** Application data compressibility on LLC<->memory links (>= 1). */
    double compressRatio = 1.0;

    /** CPU-side activity (orchestration, serial sections; 0..1). */
    double cpuActivity = 0.25;

    /** Effective CU dynamic-activity factor. */
    double
    cuActivity() const
    {
        return cuIdleActivity + (1.0 - cuIdleActivity) * cuUtilization;
    }
};

} // namespace ena

#endif // ENA_COMMON_ACTIVITY_HH

#include "hsa/signal.hh"

#include <utility>

#include "util/logging.hh"

namespace ena {

HsaSignal::HsaSignal(std::int64_t initial, std::string name)
    : value_(initial), name_(std::move(name))
{
}

void
HsaSignal::decrement()
{
    ENA_ASSERT(value_ > 0, "signal '", name_, "' decremented below 0");
    --value_;
    fireIfZero();
}

void
HsaSignal::set(std::int64_t v)
{
    ENA_ASSERT(v >= 0, "signal '", name_, "' set to negative value");
    value_ = v;
    fireIfZero();
}

void
HsaSignal::waitZero(std::function<void()> fn)
{
    ENA_ASSERT(fn, "null signal waiter");
    if (value_ == 0) {
        fn();
        return;
    }
    waiters_.push_back(std::move(fn));
}

void
HsaSignal::fireIfZero()
{
    if (value_ != 0)
        return;
    // Move out first: a waiter may re-arm the signal and wait again.
    std::vector<std::function<void()>> ready;
    ready.swap(waiters_);
    for (auto &fn : ready)
        fn();
}

} // namespace ena

#include "hsa/task_graph.hh"

#include <algorithm>

#include "sim/simulation.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

TaskGraph::TaskGraph(Simulation &sim, const std::string &name,
                     std::vector<AqlQueue *> queues)
    : SimObject(sim, name), queues_(std::move(queues))
{
    ENA_ASSERT(!queues_.empty(), "task graph needs at least one queue");
}

TaskId
TaskGraph::addTask(Tick duration, int agent, std::vector<TaskId> deps)
{
    ENA_ASSERT(!started_, "cannot add tasks after start()");
    ENA_ASSERT(agent >= 0 && agent < static_cast<int>(queues_.size()),
               "bad agent index ", agent);
    TaskNode node;
    node.id = static_cast<TaskId>(tasks_.size());
    node.durationTicks = duration;
    node.agent = agent;
    for (TaskId d : deps) {
        ENA_ASSERT(d < node.id, "dependency ", d,
                   " does not precede task ", node.id,
                   " (insert in topological order)");
    }
    node.deps = std::move(deps);
    pendingDeps_.push_back(static_cast<int>(node.deps.size()));
    signals_.push_back(std::make_unique<HsaSignal>(
        1, strformat("%s.t%u", name().c_str(), node.id)));
    tasks_.push_back(std::move(node));
    return tasks_.back().id;
}

void
TaskGraph::start()
{
    ENA_ASSERT(!started_, "start() called twice");
    ENA_ASSERT(!tasks_.empty(), "empty task graph");
    started_ = true;
    for (const TaskNode &t : tasks_) {
        if (t.deps.empty())
            dispatch(t.id);
    }
}

void
TaskGraph::dispatch(TaskId id)
{
    TaskNode &t = tasks_[id];
    AqlPacket pkt;
    pkt.id = id;
    pkt.kernelTicks = t.durationTicks;
    pkt.completion = signals_[id].get();
    // Completion of the task's signal triggers bookkeeping and
    // dependents.
    signals_[id]->waitZero([this, id] { onTaskDone(id); });
    queues_[t.agent]->submit(pkt);
}

void
TaskGraph::onTaskDone(TaskId id)
{
    TaskNode &t = tasks_[id];
    ENA_ASSERT(!t.done, "task ", id, " completed twice");
    t.done = true;
    t.finishedAt = curTick();
    ++completed_;
    if (completed_ == tasks_.size())
        finishTick_ = curTick();

    // Release dependents.
    for (TaskNode &other : tasks_) {
        if (other.done)
            continue;
        for (TaskId d : other.deps) {
            if (d == id && --pendingDeps_[other.id] == 0)
                dispatch(other.id);
        }
    }
}

Tick
TaskGraph::makespan() const
{
    ENA_ASSERT(finished(), "makespan() before the graph finished");
    return finishTick_;
}

Tick
TaskGraph::criticalPath() const
{
    std::vector<Tick> longest(tasks_.size(), 0);
    Tick best = 0;
    for (const TaskNode &t : tasks_) {
        Tick start = 0;
        for (TaskId d : t.deps)
            start = std::max(start, longest[d]);
        longest[t.id] = start + t.durationTicks;
        best = std::max(best, longest[t.id]);
    }
    return best;
}

const TaskNode &
TaskGraph::task(TaskId id) const
{
    ENA_ASSERT(id < tasks_.size(), "bad task id ", id);
    return tasks_[id];
}

} // namespace ena

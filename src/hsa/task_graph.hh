/**
 * @file
 * Directed-acyclic task graphs over AQL queues.
 *
 * The paper cites Puthoor et al. [13] — implementing DAGs with HSA —
 * as the concurrency framework for the EHP. This module provides that
 * layer: tasks with dependencies, mapped onto per-agent AQL queues
 * using barrier packets and completion signals, plus critical-path
 * analytics so the dispatch-latency benefit of user-mode queues can be
 * quantified (see examples/task_graph_scheduling.cc).
 */

#ifndef ENA_HSA_TASK_GRAPH_HH
#define ENA_HSA_TASK_GRAPH_HH

#include <memory>
#include <vector>

#include "hsa/aql_queue.hh"
#include "hsa/signal.hh"
#include "sim/sim_object.hh"

namespace ena {

using TaskId = std::uint32_t;

/** One node of the DAG. */
struct TaskNode
{
    TaskId id = 0;
    Tick durationTicks = 0;
    int agent = 0;                     ///< queue index to dispatch to
    std::vector<TaskId> deps;

    // Filled by the run.
    Tick finishedAt = 0;
    bool done = false;
};

class TaskGraph : public SimObject
{
  public:
    TaskGraph(Simulation &sim, const std::string &name,
              std::vector<AqlQueue *> queues);

    /**
     * Add a task. Dependencies must already exist (topological
     * insertion order), which also guarantees acyclicity.
     */
    TaskId addTask(Tick duration, int agent,
                   std::vector<TaskId> deps = {});

    /** Dispatch every root task; dependents follow automatically. */
    void start();

    bool finished() const { return completed_ == tasks_.size(); }

    /** Completion time of the whole graph (valid when finished()). */
    Tick makespan() const;

    /**
     * Lower bound on the makespan: the dependency-weighted critical
     * path (ignores agent contention and dispatch latency).
     */
    Tick criticalPath() const;

    const TaskNode &task(TaskId id) const;
    size_t numTasks() const { return tasks_.size(); }

  private:
    void dispatch(TaskId id);
    void onTaskDone(TaskId id);

    std::vector<AqlQueue *> queues_;
    std::vector<TaskNode> tasks_;
    /** Completion signal per task (signals dependents). */
    std::vector<std::unique_ptr<HsaSignal>> signals_;
    /** Remaining unfinished dependencies per task. */
    std::vector<int> pendingDeps_;
    size_t completed_ = 0;
    bool started_ = false;
    Tick finishTick_ = 0;
};

} // namespace ena

#endif // ENA_HSA_TASK_GRAPH_HH

/**
 * @file
 * HSA-style completion signal.
 *
 * The paper's programmability story (Section II-A1) rests on the HSA
 * system architecture: agents synchronize through signals — shared
 * integer objects that producers decrement and consumers wait on
 * ("efficient synchronization mechanisms"). This is the simulator-side
 * equivalent: a counter with registered callbacks that fire when the
 * value reaches zero.
 */

#ifndef ENA_HSA_SIGNAL_HH
#define ENA_HSA_SIGNAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ena {

class HsaSignal
{
  public:
    explicit HsaSignal(std::int64_t initial = 0, std::string name = "");

    /** Current value. */
    std::int64_t value() const { return value_; }

    /** Producer side: subtract one; fires waiters at zero. */
    void decrement();

    /** Set an explicit value (e.g. re-arm for a new barrier round). */
    void set(std::int64_t v);

    /**
     * Consumer side: run @p fn when the value reaches zero. If the
     * signal is already zero the callback runs immediately.
     */
    void waitZero(std::function<void()> fn);

    /** Number of callbacks still waiting. */
    size_t pendingWaiters() const { return waiters_.size(); }

    const std::string &name() const { return name_; }

  private:
    void fireIfZero();

    std::int64_t value_;
    std::string name_;
    std::vector<std::function<void()>> waiters_;
};

} // namespace ena

#endif // ENA_HSA_SIGNAL_HH

/**
 * @file
 * User-mode AQL dispatch queue model.
 *
 * HSA agents dispatch work by writing Architected Queuing Language
 * packets into user-mode ring buffers and ringing a doorbell; the
 * packet processor launches kernels without driver involvement. The
 * paper's HPC-programmability argument leans on this path being cheap
 * ("task offloads by both CPU and GPU to each other").
 *
 * The model: a bounded ring of dispatch packets consumed in order by a
 * packet processor with a configurable per-dispatch latency; kernels
 * execute for their given duration (several may be in flight up to the
 * device's concurrency), and each completion decrements the packet's
 * signal.
 */

#ifndef ENA_HSA_AQL_QUEUE_HH
#define ENA_HSA_AQL_QUEUE_HH

#include <cstdint>
#include <deque>

#include "hsa/signal.hh"
#include "sim/sim_object.hh"

namespace ena {

/** One AQL kernel-dispatch packet. */
struct AqlPacket
{
    std::uint64_t id = 0;
    Tick kernelTicks = 0;          ///< execution duration
    HsaSignal *completion = nullptr;
    /** Barrier packet: consume only after this signal reaches zero
     *  (encodes packet-level dependencies). */
    HsaSignal *barrier = nullptr;
};

struct AqlQueueParams
{
    size_t ringSlots = 64;
    /** Packet-processor dispatch latency (user-mode path, ~200 ns). */
    Tick dispatchLatency = 200 * tickPerNs;
    /** Concurrent kernels the device executes. */
    int deviceConcurrency = 4;
};

class AqlQueue : public SimObject
{
  public:
    AqlQueue(Simulation &sim, const std::string &name,
             AqlQueueParams params);

    /**
     * Enqueue a packet and ring the doorbell; fatal() when the ring is
     * full (back-pressure is the caller's job, as in real HSA).
     */
    void submit(const AqlPacket &pkt);

    /** Packets currently queued (not yet dispatched). */
    size_t depth() const { return ring_.size(); }

    bool
    idle() const
    {
        return ring_.empty() && running_ == 0;
    }

    std::uint64_t packetsDispatched() const
    {
        return static_cast<std::uint64_t>(statDispatched_.value());
    }

  private:
    /** Try to launch the head packet. */
    void pump();
    void launch(AqlPacket pkt);

    AqlQueueParams params_;
    std::deque<AqlPacket> ring_;
    int running_ = 0;
    bool headBlocked_ = false;

    StatScalar statDispatched_;
    StatScalar statBarrierStalls_;
    StatDistribution statQueueDepth_;
};

} // namespace ena

#endif // ENA_HSA_AQL_QUEUE_HH

#include "hsa/aql_queue.hh"

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

AqlQueue::AqlQueue(Simulation &sim, const std::string &name,
                   AqlQueueParams params)
    : SimObject(sim, name), params_(params),
      statDispatched_(sim.stats(), name + ".dispatched",
                      "packets dispatched"),
      statBarrierStalls_(sim.stats(), name + ".barrierStalls",
                         "head-of-queue barrier waits"),
      statQueueDepth_(sim.stats(), name + ".depth",
                      "ring occupancy at submit", 0.0,
                      static_cast<double>(params.ringSlots), 16)
{
    ENA_ASSERT(params_.ringSlots > 0, "queue needs ring slots");
    ENA_ASSERT(params_.deviceConcurrency > 0,
               "queue needs device concurrency");
}

void
AqlQueue::submit(const AqlPacket &pkt)
{
    if (ring_.size() >= params_.ringSlots)
        ENA_FATAL("AQL ring '", name(), "' overflow (", params_.ringSlots,
                  " slots); the submitter must back-pressure");
    statQueueDepth_.sample(static_cast<double>(ring_.size()));
    ring_.push_back(pkt);
    // Doorbell: wake the packet processor.
    pump();
}

void
AqlQueue::pump()
{
    // In-order packet consumption, as the AQL spec requires.
    while (!ring_.empty() && running_ < params_.deviceConcurrency) {
        AqlPacket pkt = ring_.front();
        if (pkt.barrier && pkt.barrier->value() != 0) {
            if (!headBlocked_) {
                headBlocked_ = true;
                ++statBarrierStalls_;
                pkt.barrier->waitZero([this] {
                    headBlocked_ = false;
                    pump();
                });
            }
            return;
        }
        ring_.pop_front();
        launch(pkt);
    }
}

void
AqlQueue::launch(AqlPacket pkt)
{
    ++running_;
    ++statDispatched_;
    Tick done = curTick() + params_.dispatchLatency + pkt.kernelTicks;
    eventq().scheduleLambda(
        done,
        [this, pkt] {
            --running_;
            if (pkt.completion)
                pkt.completion->decrement();
            pump();
        },
        "kernel completion");
}

} // namespace ena

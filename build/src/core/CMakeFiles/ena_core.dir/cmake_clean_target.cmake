file(REMOVE_RECURSE
  "libena_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ena_core.dir/chiplet_study.cc.o"
  "CMakeFiles/ena_core.dir/chiplet_study.cc.o.d"
  "CMakeFiles/ena_core.dir/dse.cc.o"
  "CMakeFiles/ena_core.dir/dse.cc.o.d"
  "CMakeFiles/ena_core.dir/ena.cc.o"
  "CMakeFiles/ena_core.dir/ena.cc.o.d"
  "CMakeFiles/ena_core.dir/node_evaluator.cc.o"
  "CMakeFiles/ena_core.dir/node_evaluator.cc.o.d"
  "CMakeFiles/ena_core.dir/perf_model.cc.o"
  "CMakeFiles/ena_core.dir/perf_model.cc.o.d"
  "CMakeFiles/ena_core.dir/reconfig.cc.o"
  "CMakeFiles/ena_core.dir/reconfig.cc.o.d"
  "CMakeFiles/ena_core.dir/studies.cc.o"
  "CMakeFiles/ena_core.dir/studies.cc.o.d"
  "CMakeFiles/ena_core.dir/thermal_study.cc.o"
  "CMakeFiles/ena_core.dir/thermal_study.cc.o.d"
  "CMakeFiles/ena_core.dir/twolevel_study.cc.o"
  "CMakeFiles/ena_core.dir/twolevel_study.cc.o.d"
  "libena_core.a"
  "libena_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chiplet_study.cc" "src/core/CMakeFiles/ena_core.dir/chiplet_study.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/chiplet_study.cc.o.d"
  "/root/repo/src/core/dse.cc" "src/core/CMakeFiles/ena_core.dir/dse.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/dse.cc.o.d"
  "/root/repo/src/core/ena.cc" "src/core/CMakeFiles/ena_core.dir/ena.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/ena.cc.o.d"
  "/root/repo/src/core/node_evaluator.cc" "src/core/CMakeFiles/ena_core.dir/node_evaluator.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/node_evaluator.cc.o.d"
  "/root/repo/src/core/perf_model.cc" "src/core/CMakeFiles/ena_core.dir/perf_model.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/perf_model.cc.o.d"
  "/root/repo/src/core/reconfig.cc" "src/core/CMakeFiles/ena_core.dir/reconfig.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/reconfig.cc.o.d"
  "/root/repo/src/core/studies.cc" "src/core/CMakeFiles/ena_core.dir/studies.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/studies.cc.o.d"
  "/root/repo/src/core/thermal_study.cc" "src/core/CMakeFiles/ena_core.dir/thermal_study.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/thermal_study.cc.o.d"
  "/root/repo/src/core/twolevel_study.cc" "src/core/CMakeFiles/ena_core.dir/twolevel_study.cc.o" "gcc" "src/core/CMakeFiles/ena_core.dir/twolevel_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ena_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ena_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ena_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ena_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ena_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ena_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ena_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

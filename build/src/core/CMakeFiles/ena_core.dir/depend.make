# Empty dependencies file for ena_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ena_util.dir/config.cc.o"
  "CMakeFiles/ena_util.dir/config.cc.o.d"
  "CMakeFiles/ena_util.dir/logging.cc.o"
  "CMakeFiles/ena_util.dir/logging.cc.o.d"
  "CMakeFiles/ena_util.dir/stats_math.cc.o"
  "CMakeFiles/ena_util.dir/stats_math.cc.o.d"
  "CMakeFiles/ena_util.dir/string_utils.cc.o"
  "CMakeFiles/ena_util.dir/string_utils.cc.o.d"
  "CMakeFiles/ena_util.dir/table.cc.o"
  "CMakeFiles/ena_util.dir/table.cc.o.d"
  "libena_util.a"
  "libena_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libena_util.a"
)

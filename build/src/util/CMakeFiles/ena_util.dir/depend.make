# Empty dependencies file for ena_util.
# This may be replaced when dependencies are built.

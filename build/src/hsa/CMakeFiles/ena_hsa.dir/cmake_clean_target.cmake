file(REMOVE_RECURSE
  "libena_hsa.a"
)

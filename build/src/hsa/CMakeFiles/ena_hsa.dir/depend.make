# Empty dependencies file for ena_hsa.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsa/aql_queue.cc" "src/hsa/CMakeFiles/ena_hsa.dir/aql_queue.cc.o" "gcc" "src/hsa/CMakeFiles/ena_hsa.dir/aql_queue.cc.o.d"
  "/root/repo/src/hsa/signal.cc" "src/hsa/CMakeFiles/ena_hsa.dir/signal.cc.o" "gcc" "src/hsa/CMakeFiles/ena_hsa.dir/signal.cc.o.d"
  "/root/repo/src/hsa/task_graph.cc" "src/hsa/CMakeFiles/ena_hsa.dir/task_graph.cc.o" "gcc" "src/hsa/CMakeFiles/ena_hsa.dir/task_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ena_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ena_hsa.dir/aql_queue.cc.o"
  "CMakeFiles/ena_hsa.dir/aql_queue.cc.o.d"
  "CMakeFiles/ena_hsa.dir/signal.cc.o"
  "CMakeFiles/ena_hsa.dir/signal.cc.o.d"
  "CMakeFiles/ena_hsa.dir/task_graph.cc.o"
  "CMakeFiles/ena_hsa.dir/task_graph.cc.o.d"
  "libena_hsa.a"
  "libena_hsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_hsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

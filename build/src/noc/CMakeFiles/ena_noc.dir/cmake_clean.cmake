file(REMOVE_RECURSE
  "CMakeFiles/ena_noc.dir/crossbar_network.cc.o"
  "CMakeFiles/ena_noc.dir/crossbar_network.cc.o.d"
  "CMakeFiles/ena_noc.dir/detailed_network.cc.o"
  "CMakeFiles/ena_noc.dir/detailed_network.cc.o.d"
  "CMakeFiles/ena_noc.dir/interposer_network.cc.o"
  "CMakeFiles/ena_noc.dir/interposer_network.cc.o.d"
  "CMakeFiles/ena_noc.dir/network.cc.o"
  "CMakeFiles/ena_noc.dir/network.cc.o.d"
  "CMakeFiles/ena_noc.dir/topology.cc.o"
  "CMakeFiles/ena_noc.dir/topology.cc.o.d"
  "libena_noc.a"
  "libena_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libena_noc.a"
)

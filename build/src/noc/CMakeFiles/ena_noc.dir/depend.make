# Empty dependencies file for ena_noc.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("common")
subdirs("sim")
subdirs("workloads")
subdirs("power")
subdirs("noc")
subdirs("mem")
subdirs("gpu")
subdirs("cpu")
subdirs("thermal")
subdirs("ras")
subdirs("hsa")
subdirs("core")

file(REMOVE_RECURSE
  "libena_workloads.a"
)

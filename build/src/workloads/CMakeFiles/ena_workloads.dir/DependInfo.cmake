
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernel_profile.cc" "src/workloads/CMakeFiles/ena_workloads.dir/kernel_profile.cc.o" "gcc" "src/workloads/CMakeFiles/ena_workloads.dir/kernel_profile.cc.o.d"
  "/root/repo/src/workloads/trace_gen.cc" "src/workloads/CMakeFiles/ena_workloads.dir/trace_gen.cc.o" "gcc" "src/workloads/CMakeFiles/ena_workloads.dir/trace_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for ena_workloads.
# This may be replaced when dependencies are built.

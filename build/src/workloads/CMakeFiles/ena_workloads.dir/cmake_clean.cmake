file(REMOVE_RECURSE
  "CMakeFiles/ena_workloads.dir/kernel_profile.cc.o"
  "CMakeFiles/ena_workloads.dir/kernel_profile.cc.o.d"
  "CMakeFiles/ena_workloads.dir/trace_gen.cc.o"
  "CMakeFiles/ena_workloads.dir/trace_gen.cc.o.d"
  "libena_workloads.a"
  "libena_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

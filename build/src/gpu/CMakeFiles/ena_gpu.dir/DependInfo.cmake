
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/compute_unit.cc" "src/gpu/CMakeFiles/ena_gpu.dir/compute_unit.cc.o" "gcc" "src/gpu/CMakeFiles/ena_gpu.dir/compute_unit.cc.o.d"
  "/root/repo/src/gpu/dispatcher.cc" "src/gpu/CMakeFiles/ena_gpu.dir/dispatcher.cc.o" "gcc" "src/gpu/CMakeFiles/ena_gpu.dir/dispatcher.cc.o.d"
  "/root/repo/src/gpu/gpu_chiplet.cc" "src/gpu/CMakeFiles/ena_gpu.dir/gpu_chiplet.cc.o" "gcc" "src/gpu/CMakeFiles/ena_gpu.dir/gpu_chiplet.cc.o.d"
  "/root/repo/src/gpu/mem_stack_endpoint.cc" "src/gpu/CMakeFiles/ena_gpu.dir/mem_stack_endpoint.cc.o" "gcc" "src/gpu/CMakeFiles/ena_gpu.dir/mem_stack_endpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ena_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ena_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ena_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ena_gpu.
# This may be replaced when dependencies are built.

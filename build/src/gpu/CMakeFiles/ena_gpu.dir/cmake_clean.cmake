file(REMOVE_RECURSE
  "CMakeFiles/ena_gpu.dir/compute_unit.cc.o"
  "CMakeFiles/ena_gpu.dir/compute_unit.cc.o.d"
  "CMakeFiles/ena_gpu.dir/dispatcher.cc.o"
  "CMakeFiles/ena_gpu.dir/dispatcher.cc.o.d"
  "CMakeFiles/ena_gpu.dir/gpu_chiplet.cc.o"
  "CMakeFiles/ena_gpu.dir/gpu_chiplet.cc.o.d"
  "CMakeFiles/ena_gpu.dir/mem_stack_endpoint.cc.o"
  "CMakeFiles/ena_gpu.dir/mem_stack_endpoint.cc.o.d"
  "libena_gpu.a"
  "libena_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libena_gpu.a"
)

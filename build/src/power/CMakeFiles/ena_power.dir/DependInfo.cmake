
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/node_power.cc" "src/power/CMakeFiles/ena_power.dir/node_power.cc.o" "gcc" "src/power/CMakeFiles/ena_power.dir/node_power.cc.o.d"
  "/root/repo/src/power/optimizations.cc" "src/power/CMakeFiles/ena_power.dir/optimizations.cc.o" "gcc" "src/power/CMakeFiles/ena_power.dir/optimizations.cc.o.d"
  "/root/repo/src/power/tech_model.cc" "src/power/CMakeFiles/ena_power.dir/tech_model.cc.o" "gcc" "src/power/CMakeFiles/ena_power.dir/tech_model.cc.o.d"
  "/root/repo/src/power/vf_curve.cc" "src/power/CMakeFiles/ena_power.dir/vf_curve.cc.o" "gcc" "src/power/CMakeFiles/ena_power.dir/vf_curve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

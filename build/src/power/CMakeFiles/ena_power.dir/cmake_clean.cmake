file(REMOVE_RECURSE
  "CMakeFiles/ena_power.dir/node_power.cc.o"
  "CMakeFiles/ena_power.dir/node_power.cc.o.d"
  "CMakeFiles/ena_power.dir/optimizations.cc.o"
  "CMakeFiles/ena_power.dir/optimizations.cc.o.d"
  "CMakeFiles/ena_power.dir/tech_model.cc.o"
  "CMakeFiles/ena_power.dir/tech_model.cc.o.d"
  "CMakeFiles/ena_power.dir/vf_curve.cc.o"
  "CMakeFiles/ena_power.dir/vf_curve.cc.o.d"
  "libena_power.a"
  "libena_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

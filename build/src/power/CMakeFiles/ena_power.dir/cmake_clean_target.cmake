file(REMOVE_RECURSE
  "libena_power.a"
)

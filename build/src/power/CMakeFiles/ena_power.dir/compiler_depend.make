# Empty compiler generated dependencies file for ena_power.
# This may be replaced when dependencies are built.

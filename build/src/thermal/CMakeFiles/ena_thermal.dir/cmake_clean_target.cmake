file(REMOVE_RECURSE
  "libena_thermal.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ena_thermal.dir/grid.cc.o"
  "CMakeFiles/ena_thermal.dir/grid.cc.o.d"
  "CMakeFiles/ena_thermal.dir/package_model.cc.o"
  "CMakeFiles/ena_thermal.dir/package_model.cc.o.d"
  "CMakeFiles/ena_thermal.dir/power_map.cc.o"
  "CMakeFiles/ena_thermal.dir/power_map.cc.o.d"
  "libena_thermal.a"
  "libena_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/grid.cc" "src/thermal/CMakeFiles/ena_thermal.dir/grid.cc.o" "gcc" "src/thermal/CMakeFiles/ena_thermal.dir/grid.cc.o.d"
  "/root/repo/src/thermal/package_model.cc" "src/thermal/CMakeFiles/ena_thermal.dir/package_model.cc.o" "gcc" "src/thermal/CMakeFiles/ena_thermal.dir/package_model.cc.o.d"
  "/root/repo/src/thermal/power_map.cc" "src/thermal/CMakeFiles/ena_thermal.dir/power_map.cc.o" "gcc" "src/thermal/CMakeFiles/ena_thermal.dir/power_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ena_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ena_thermal.
# This may be replaced when dependencies are built.

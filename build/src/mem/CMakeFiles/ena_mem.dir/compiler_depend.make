# Empty compiler generated dependencies file for ena_mem.
# This may be replaced when dependencies are built.

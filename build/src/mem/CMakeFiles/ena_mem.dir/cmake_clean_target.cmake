file(REMOVE_RECURSE
  "libena_mem.a"
)

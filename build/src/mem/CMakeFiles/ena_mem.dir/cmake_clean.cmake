file(REMOVE_RECURSE
  "CMakeFiles/ena_mem.dir/address_map.cc.o"
  "CMakeFiles/ena_mem.dir/address_map.cc.o.d"
  "CMakeFiles/ena_mem.dir/cache.cc.o"
  "CMakeFiles/ena_mem.dir/cache.cc.o.d"
  "CMakeFiles/ena_mem.dir/compression.cc.o"
  "CMakeFiles/ena_mem.dir/compression.cc.o.d"
  "CMakeFiles/ena_mem.dir/ext_memory.cc.o"
  "CMakeFiles/ena_mem.dir/ext_memory.cc.o.d"
  "CMakeFiles/ena_mem.dir/hbm_stack.cc.o"
  "CMakeFiles/ena_mem.dir/hbm_stack.cc.o.d"
  "CMakeFiles/ena_mem.dir/memory_manager.cc.o"
  "CMakeFiles/ena_mem.dir/memory_manager.cc.o.d"
  "libena_mem.a"
  "libena_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

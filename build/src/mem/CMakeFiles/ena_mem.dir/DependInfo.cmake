
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cc" "src/mem/CMakeFiles/ena_mem.dir/address_map.cc.o" "gcc" "src/mem/CMakeFiles/ena_mem.dir/address_map.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/ena_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/ena_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/compression.cc" "src/mem/CMakeFiles/ena_mem.dir/compression.cc.o" "gcc" "src/mem/CMakeFiles/ena_mem.dir/compression.cc.o.d"
  "/root/repo/src/mem/ext_memory.cc" "src/mem/CMakeFiles/ena_mem.dir/ext_memory.cc.o" "gcc" "src/mem/CMakeFiles/ena_mem.dir/ext_memory.cc.o.d"
  "/root/repo/src/mem/hbm_stack.cc" "src/mem/CMakeFiles/ena_mem.dir/hbm_stack.cc.o" "gcc" "src/mem/CMakeFiles/ena_mem.dir/hbm_stack.cc.o.d"
  "/root/repo/src/mem/memory_manager.cc" "src/mem/CMakeFiles/ena_mem.dir/memory_manager.cc.o" "gcc" "src/mem/CMakeFiles/ena_mem.dir/memory_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ena_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for ena_cpu.
# This may be replaced when dependencies are built.

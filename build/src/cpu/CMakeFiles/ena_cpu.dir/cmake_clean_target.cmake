file(REMOVE_RECURSE
  "libena_cpu.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ena_cpu.dir/amdahl.cc.o"
  "CMakeFiles/ena_cpu.dir/amdahl.cc.o.d"
  "CMakeFiles/ena_cpu.dir/cpu_cluster.cc.o"
  "CMakeFiles/ena_cpu.dir/cpu_cluster.cc.o.d"
  "CMakeFiles/ena_cpu.dir/cpu_core.cc.o"
  "CMakeFiles/ena_cpu.dir/cpu_core.cc.o.d"
  "libena_cpu.a"
  "libena_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

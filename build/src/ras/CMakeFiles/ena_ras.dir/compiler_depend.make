# Empty compiler generated dependencies file for ena_ras.
# This may be replaced when dependencies are built.

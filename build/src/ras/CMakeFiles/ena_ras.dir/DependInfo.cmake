
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ras/checkpoint.cc" "src/ras/CMakeFiles/ena_ras.dir/checkpoint.cc.o" "gcc" "src/ras/CMakeFiles/ena_ras.dir/checkpoint.cc.o.d"
  "/root/repo/src/ras/fault_model.cc" "src/ras/CMakeFiles/ena_ras.dir/fault_model.cc.o" "gcc" "src/ras/CMakeFiles/ena_ras.dir/fault_model.cc.o.d"
  "/root/repo/src/ras/rmt.cc" "src/ras/CMakeFiles/ena_ras.dir/rmt.cc.o" "gcc" "src/ras/CMakeFiles/ena_ras.dir/rmt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libena_ras.a"
)

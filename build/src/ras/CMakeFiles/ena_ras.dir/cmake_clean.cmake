file(REMOVE_RECURSE
  "CMakeFiles/ena_ras.dir/checkpoint.cc.o"
  "CMakeFiles/ena_ras.dir/checkpoint.cc.o.d"
  "CMakeFiles/ena_ras.dir/fault_model.cc.o"
  "CMakeFiles/ena_ras.dir/fault_model.cc.o.d"
  "CMakeFiles/ena_ras.dir/rmt.cc.o"
  "CMakeFiles/ena_ras.dir/rmt.cc.o.d"
  "libena_ras.a"
  "libena_ras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_ras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

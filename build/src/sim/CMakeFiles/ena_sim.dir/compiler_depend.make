# Empty compiler generated dependencies file for ena_sim.
# This may be replaced when dependencies are built.

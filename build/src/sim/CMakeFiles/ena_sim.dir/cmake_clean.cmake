file(REMOVE_RECURSE
  "CMakeFiles/ena_sim.dir/event.cc.o"
  "CMakeFiles/ena_sim.dir/event.cc.o.d"
  "CMakeFiles/ena_sim.dir/sim_object.cc.o"
  "CMakeFiles/ena_sim.dir/sim_object.cc.o.d"
  "CMakeFiles/ena_sim.dir/simulation.cc.o"
  "CMakeFiles/ena_sim.dir/simulation.cc.o.d"
  "CMakeFiles/ena_sim.dir/stats.cc.o"
  "CMakeFiles/ena_sim.dir/stats.cc.o.d"
  "libena_sim.a"
  "libena_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ena_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

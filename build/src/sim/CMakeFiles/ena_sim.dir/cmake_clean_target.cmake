file(REMOVE_RECURSE
  "libena_sim.a"
)

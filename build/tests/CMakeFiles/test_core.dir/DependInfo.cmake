
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_calibration.cc" "tests/CMakeFiles/test_core.dir/core/test_calibration.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_calibration.cc.o.d"
  "/root/repo/tests/core/test_dse.cc" "tests/CMakeFiles/test_core.dir/core/test_dse.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dse.cc.o.d"
  "/root/repo/tests/core/test_node_evaluator.cc" "tests/CMakeFiles/test_core.dir/core/test_node_evaluator.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_node_evaluator.cc.o.d"
  "/root/repo/tests/core/test_perf_model.cc" "tests/CMakeFiles/test_core.dir/core/test_perf_model.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_perf_model.cc.o.d"
  "/root/repo/tests/core/test_properties.cc" "tests/CMakeFiles/test_core.dir/core/test_properties.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_properties.cc.o.d"
  "/root/repo/tests/core/test_reconfig.cc" "tests/CMakeFiles/test_core.dir/core/test_reconfig.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_reconfig.cc.o.d"
  "/root/repo/tests/core/test_studies.cc" "tests/CMakeFiles/test_core.dir/core/test_studies.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_studies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ras/CMakeFiles/ena_ras.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/ena_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ena_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ena_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ena_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ena_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ena_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ena_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ena_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ena_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_calibration.cc.o"
  "CMakeFiles/test_core.dir/core/test_calibration.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_dse.cc.o"
  "CMakeFiles/test_core.dir/core/test_dse.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_node_evaluator.cc.o"
  "CMakeFiles/test_core.dir/core/test_node_evaluator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_perf_model.cc.o"
  "CMakeFiles/test_core.dir/core/test_perf_model.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_properties.cc.o"
  "CMakeFiles/test_core.dir/core/test_properties.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_reconfig.cc.o"
  "CMakeFiles/test_core.dir/core/test_reconfig.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_studies.cc.o"
  "CMakeFiles/test_core.dir/core/test_studies.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

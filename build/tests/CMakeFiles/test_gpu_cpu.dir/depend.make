# Empty dependencies file for test_gpu_cpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_cpu.dir/cpu/test_cpu.cc.o"
  "CMakeFiles/test_gpu_cpu.dir/cpu/test_cpu.cc.o.d"
  "CMakeFiles/test_gpu_cpu.dir/cpu/test_cpu_core.cc.o"
  "CMakeFiles/test_gpu_cpu.dir/cpu/test_cpu_core.cc.o.d"
  "CMakeFiles/test_gpu_cpu.dir/gpu/test_gpu.cc.o"
  "CMakeFiles/test_gpu_cpu.dir/gpu/test_gpu.cc.o.d"
  "test_gpu_cpu"
  "test_gpu_cpu.pdb"
  "test_gpu_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

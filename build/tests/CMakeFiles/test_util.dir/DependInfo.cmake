
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_config.cc" "tests/CMakeFiles/test_util.dir/util/test_config.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_config.cc.o.d"
  "/root/repo/tests/util/test_logging.cc" "tests/CMakeFiles/test_util.dir/util/test_logging.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_logging.cc.o.d"
  "/root/repo/tests/util/test_node_config_io.cc" "tests/CMakeFiles/test_util.dir/util/test_node_config_io.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_node_config_io.cc.o.d"
  "/root/repo/tests/util/test_rng.cc" "tests/CMakeFiles/test_util.dir/util/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cc.o.d"
  "/root/repo/tests/util/test_stats_math.cc" "tests/CMakeFiles/test_util.dir/util/test_stats_math.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats_math.cc.o.d"
  "/root/repo/tests/util/test_string_utils.cc" "tests/CMakeFiles/test_util.dir/util/test_string_utils.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_string_utils.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o.d"
  "/root/repo/tests/util/test_units.cc" "tests/CMakeFiles/test_util.dir/util/test_units.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ras/CMakeFiles/ena_ras.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/ena_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ena_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ena_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ena_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ena_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ena_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ena_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ena_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ena_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

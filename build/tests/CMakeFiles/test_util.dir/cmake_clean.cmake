file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_config.cc.o"
  "CMakeFiles/test_util.dir/util/test_config.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_logging.cc.o"
  "CMakeFiles/test_util.dir/util/test_logging.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_node_config_io.cc.o"
  "CMakeFiles/test_util.dir/util/test_node_config_io.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_rng.cc.o"
  "CMakeFiles/test_util.dir/util/test_rng.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_stats_math.cc.o"
  "CMakeFiles/test_util.dir/util/test_stats_math.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_string_utils.cc.o"
  "CMakeFiles/test_util.dir/util/test_string_utils.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_table.cc.o"
  "CMakeFiles/test_util.dir/util/test_table.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_units.cc.o"
  "CMakeFiles/test_util.dir/util/test_units.cc.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

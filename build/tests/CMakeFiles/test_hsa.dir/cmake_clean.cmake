file(REMOVE_RECURSE
  "CMakeFiles/test_hsa.dir/hsa/test_hsa.cc.o"
  "CMakeFiles/test_hsa.dir/hsa/test_hsa.cc.o.d"
  "test_hsa"
  "test_hsa.pdb"
  "test_hsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ras.dir/ras/test_checkpoint.cc.o"
  "CMakeFiles/test_ras.dir/ras/test_checkpoint.cc.o.d"
  "CMakeFiles/test_ras.dir/ras/test_fault_model.cc.o"
  "CMakeFiles/test_ras.dir/ras/test_fault_model.cc.o.d"
  "CMakeFiles/test_ras.dir/ras/test_rmt.cc.o"
  "CMakeFiles/test_ras.dir/ras/test_rmt.cc.o.d"
  "test_ras"
  "test_ras.pdb"
  "test_ras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

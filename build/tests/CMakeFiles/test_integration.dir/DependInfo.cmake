
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_chiplet_study.cc" "tests/CMakeFiles/test_integration.dir/integration/test_chiplet_study.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_chiplet_study.cc.o.d"
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o.d"
  "/root/repo/tests/integration/test_twolevel_study.cc" "tests/CMakeFiles/test_integration.dir/integration/test_twolevel_study.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_twolevel_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ras/CMakeFiles/ena_ras.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/ena_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ena_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ena_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ena_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ena_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ena_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ena_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ena_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ena_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ena_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

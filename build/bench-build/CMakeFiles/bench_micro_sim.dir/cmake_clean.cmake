file(REMOVE_RECURSE
  "../bench/bench_micro_sim"
  "../bench/bench_micro_sim.pdb"
  "CMakeFiles/bench_micro_sim.dir/bench_micro_sim.cc.o"
  "CMakeFiles/bench_micro_sim.dir/bench_micro_sim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

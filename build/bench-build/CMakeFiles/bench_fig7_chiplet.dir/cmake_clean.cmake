file(REMOVE_RECURSE
  "../bench/bench_fig7_chiplet"
  "../bench/bench_fig7_chiplet.pdb"
  "CMakeFiles/bench_fig7_chiplet.dir/bench_fig7_chiplet.cc.o"
  "CMakeFiles/bench_fig7_chiplet.dir/bench_fig7_chiplet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_chiplet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

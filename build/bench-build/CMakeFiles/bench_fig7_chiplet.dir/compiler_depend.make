# Empty compiler generated dependencies file for bench_fig7_chiplet.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig5_comd.
# This may be replaced when dependencies are built.

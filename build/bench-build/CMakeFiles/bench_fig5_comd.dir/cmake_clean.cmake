file(REMOVE_RECURSE
  "../bench/bench_fig5_comd"
  "../bench/bench_fig5_comd.pdb"
  "CMakeFiles/bench_fig5_comd.dir/bench_fig5_comd.cc.o"
  "CMakeFiles/bench_fig5_comd.dir/bench_fig5_comd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_comd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig6_lulesh"
  "../bench/bench_fig6_lulesh.pdb"
  "CMakeFiles/bench_fig6_lulesh.dir/bench_fig6_lulesh.cc.o"
  "CMakeFiles/bench_fig6_lulesh.dir/bench_fig6_lulesh.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

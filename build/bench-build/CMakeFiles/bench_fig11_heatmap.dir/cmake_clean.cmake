file(REMOVE_RECURSE
  "../bench/bench_fig11_heatmap"
  "../bench/bench_fig11_heatmap.pdb"
  "CMakeFiles/bench_fig11_heatmap.dir/bench_fig11_heatmap.cc.o"
  "CMakeFiles/bench_fig11_heatmap.dir/bench_fig11_heatmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

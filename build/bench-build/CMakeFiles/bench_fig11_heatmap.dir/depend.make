# Empty dependencies file for bench_fig11_heatmap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig8_missrate"
  "../bench/bench_fig8_missrate.pdb"
  "CMakeFiles/bench_fig8_missrate.dir/bench_fig8_missrate.cc.o"
  "CMakeFiles/bench_fig8_missrate.dir/bench_fig8_missrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

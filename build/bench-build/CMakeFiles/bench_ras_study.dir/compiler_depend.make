# Empty compiler generated dependencies file for bench_ras_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ras_study"
  "../bench/bench_ras_study.pdb"
  "CMakeFiles/bench_ras_study.dir/bench_ras_study.cc.o"
  "CMakeFiles/bench_ras_study.dir/bench_ras_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ras_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

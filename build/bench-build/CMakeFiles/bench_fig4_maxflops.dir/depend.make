# Empty dependencies file for bench_fig4_maxflops.
# This may be replaced when dependencies are built.

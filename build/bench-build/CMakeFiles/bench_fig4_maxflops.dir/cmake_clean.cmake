file(REMOVE_RECURSE
  "../bench/bench_fig4_maxflops"
  "../bench/bench_fig4_maxflops.pdb"
  "CMakeFiles/bench_fig4_maxflops.dir/bench_fig4_maxflops.cc.o"
  "CMakeFiles/bench_fig4_maxflops.dir/bench_fig4_maxflops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_maxflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

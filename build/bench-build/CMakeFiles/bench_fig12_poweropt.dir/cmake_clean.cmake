file(REMOVE_RECURSE
  "../bench/bench_fig12_poweropt"
  "../bench/bench_fig12_poweropt.pdb"
  "CMakeFiles/bench_fig12_poweropt.dir/bench_fig12_poweropt.cc.o"
  "CMakeFiles/bench_fig12_poweropt.dir/bench_fig12_poweropt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_poweropt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_poweropt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig14_exascale"
  "../bench/bench_fig14_exascale.pdb"
  "CMakeFiles/bench_fig14_exascale.dir/bench_fig14_exascale.cc.o"
  "CMakeFiles/bench_fig14_exascale.dir/bench_fig14_exascale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_exascale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig14_exascale.
# This may be replaced when dependencies are built.

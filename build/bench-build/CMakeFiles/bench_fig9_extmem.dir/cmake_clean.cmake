file(REMOVE_RECURSE
  "../bench/bench_fig9_extmem"
  "../bench/bench_fig9_extmem.pdb"
  "CMakeFiles/bench_fig9_extmem.dir/bench_fig9_extmem.cc.o"
  "CMakeFiles/bench_fig9_extmem.dir/bench_fig9_extmem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_extmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_extmem.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_dse.
# This may be replaced when dependencies are built.

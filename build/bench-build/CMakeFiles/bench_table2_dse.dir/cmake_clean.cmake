file(REMOVE_RECURSE
  "../bench/bench_table2_dse"
  "../bench/bench_table2_dse.pdb"
  "CMakeFiles/bench_table2_dse.dir/bench_table2_dse.cc.o"
  "CMakeFiles/bench_table2_dse.dir/bench_table2_dse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig13_perfperwatt.
# This may be replaced when dependencies are built.

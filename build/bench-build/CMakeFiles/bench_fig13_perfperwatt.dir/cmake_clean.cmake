file(REMOVE_RECURSE
  "../bench/bench_fig13_perfperwatt"
  "../bench/bench_fig13_perfperwatt.pdb"
  "CMakeFiles/bench_fig13_perfperwatt.dir/bench_fig13_perfperwatt.cc.o"
  "CMakeFiles/bench_fig13_perfperwatt.dir/bench_fig13_perfperwatt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_perfperwatt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

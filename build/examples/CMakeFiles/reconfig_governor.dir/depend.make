# Empty dependencies file for reconfig_governor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/reconfig_governor.dir/reconfig_governor.cc.o"
  "CMakeFiles/reconfig_governor.dir/reconfig_governor.cc.o.d"
  "reconfig_governor"
  "reconfig_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

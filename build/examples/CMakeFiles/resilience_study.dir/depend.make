# Empty dependencies file for resilience_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/custom_node.dir/custom_node.cc.o"
  "CMakeFiles/custom_node.dir/custom_node.cc.o.d"
  "custom_node"
  "custom_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

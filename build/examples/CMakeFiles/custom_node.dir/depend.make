# Empty dependencies file for custom_node.
# This may be replaced when dependencies are built.

# Empty dependencies file for chiplet_vs_monolithic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chiplet_vs_monolithic.dir/chiplet_vs_monolithic.cc.o"
  "CMakeFiles/chiplet_vs_monolithic.dir/chiplet_vs_monolithic.cc.o.d"
  "chiplet_vs_monolithic"
  "chiplet_vs_monolithic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chiplet_vs_monolithic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

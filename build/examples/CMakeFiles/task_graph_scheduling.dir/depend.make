# Empty dependencies file for task_graph_scheduling.
# This may be replaced when dependencies are built.

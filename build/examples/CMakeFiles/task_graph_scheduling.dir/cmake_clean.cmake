file(REMOVE_RECURSE
  "CMakeFiles/task_graph_scheduling.dir/task_graph_scheduling.cc.o"
  "CMakeFiles/task_graph_scheduling.dir/task_graph_scheduling.cc.o.d"
  "task_graph_scheduling"
  "task_graph_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_graph_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
